#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "core/code_map.hpp"
#include "memprof/object_map.hpp"
#include "memprof/report.hpp"
#include "memprof/resolve.hpp"
#include "service/query.hpp"
#include "store/profile_store.hpp"
#include "support/format.hpp"

namespace viprof::service {

namespace {

/// The canonical report events (what viprof_report prints).
const std::vector<hw::EventKind> kReportEvents = {hw::EventKind::kGlobalPowerEvents,
                                                  hw::EventKind::kBsqCacheReference};

std::optional<hw::EventKind> event_from(const std::string& name) {
  for (hw::EventKind e : hw::kAllEventKinds)
    if (name == hw::to_string(e)) return e;
  if (name == "time") return hw::EventKind::kGlobalPowerEvents;
  if (name == "dmiss") return hw::EventKind::kBsqCacheReference;
  return std::nullopt;
}

/// "reg <pid> <heap_lo> <heap_hi> <boot_base> <boot_size> <map|-> <dir|->
/// [<obj_dir|->]", hex ranges — the archive manifest line format. The
/// object-map dir is a trailing addition; lines from older archives simply
/// lack it.
std::optional<core::VmRegistration> parse_reg_line(const std::string& line) {
  std::istringstream ls(line);
  std::string tag, lo_hex, hi_hex, boot_hex, map_path, jit_dir;
  core::VmRegistration reg;
  ls >> tag >> reg.pid >> lo_hex >> hi_hex >> boot_hex >> reg.boot_size >> map_path >>
      jit_dir;
  if (ls.fail() || tag != "reg") return std::nullopt;
  try {
    reg.heap_lo = std::stoull(lo_hex, nullptr, 16);
    reg.heap_hi = std::stoull(hi_hex, nullptr, 16);
    reg.boot_base = std::stoull(boot_hex, nullptr, 16);
  } catch (...) {
    return std::nullopt;
  }
  reg.boot_map_path = map_path == "-" ? "" : map_path;
  reg.jit_map_dir = jit_dir == "-" ? "" : jit_dir;
  std::string obj_dir;
  ls >> obj_dir;
  reg.obj_map_dir = (obj_dir.empty() || obj_dir == "-") ? "" : obj_dir;
  return reg;
}

/// The per-batch view of the shared code-map cache: shared_ptr pins built
/// once per batch, so eviction under a running worker is harmless.
class PinnedJitSource final : public core::JitIndexSource {
 public:
  const core::CodeMapIndex* index_for(hw::Pid pid, std::uint64_t) const override {
    auto it = pins_.find(pid);
    return it == pins_.end() ? nullptr : it->second.get();
  }

  std::map<hw::Pid, CodeMapCache::IndexPtr> pins_;
};

}  // namespace

// ---------------------------------------------------------------- connection

bool ServerConnection::send(const std::string& bytes) {
  if (closed_) return false;
  return wire_->send(bytes);
}

void ServerConnection::deliver(const char* data, std::size_t size) {
  decoder_.feed(data, size);
  FrameView frame;
  while (decoder_.next_view(frame)) server_->dispatch(*this, frame);
  const std::uint64_t torn = decoder_.torn_frames();
  if (torn > reported_torn_) {
    const std::uint64_t delta = torn - reported_torn_;
    reported_torn_ = torn;
    server_->telemetry_.counter("service.frames.torn").inc(delta);
    if (session_) session_->count_torn_frames(delta);
  }
}

void ServerConnection::close() {
  if (closed_) return;
  closed_ = true;
  if (wire_) wire_->close();
  // A disconnect mid-frame leaves undecodable bytes behind: that is a torn
  // frame the decoder never got to finish. Count it.
  if (decoder_.buffered_bytes() > 0) {
    server_->telemetry_.counter("service.frames.torn").inc();
    if (session_) session_->count_torn_frames(1);
  }
  if (session_ && !session_->ended())
    server_->telemetry_.counter("service.disconnects").inc();
}

std::optional<Frame> ServerConnection::next_reply() {
  std::lock_guard<std::mutex> lock(reply_mu_);
  if (reply_read_ >= replies_.size()) return std::nullopt;
  return replies_[reply_read_++];
}

// -------------------------------------------------------------------- server

ProfileServer::ProfileServer(const ServerConfig& config)
    : config_(config),
      cache_(config.code_map_cache_capacity),
      pool_(config.ingest_threads == 0 ? 1 : config.ingest_threads) {
  telemetry_.gauge("service.ingest_threads").set(static_cast<double>(pool_.size()));
  // Arm the contention suspects before any traffic (DESIGN.md §13).
  cache_.attach_telemetry(telemetry_);
  pool_.attach_telemetry(telemetry_);
  sessions_mu_.attach(telemetry_);
}

ProfileServer::~ProfileServer() {
  // Unblock any receiver stuck in backpressure, then let the pool join.
  std::lock_guard<support::TracedSharedMutex> lock(sessions_mu_);
  for (auto& [id, session] : sessions_) session->queue_.close();
}

std::unique_ptr<ServerConnection> ProfileServer::connect(const std::string& client_name) {
  std::unique_ptr<ServerConnection> conn(new ServerConnection(this, client_name));
  ServerConnection* raw = conn.get();
  conn->wire_ = std::make_unique<LoopbackTransport>(
      client_name, [raw](const char* data, std::size_t size) { raw->deliver(data, size); },
      /*on_close=*/nullptr, config_.fault);
  telemetry_.counter("service.connections").inc();
  return conn;
}

std::shared_ptr<ServerSession> ProfileServer::open_session(const std::string& id) {
  std::lock_guard<support::TracedSharedMutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    const std::size_t stripes =
        config_.agg_stripes != 0 ? config_.agg_stripes : pool_.size();
    it = sessions_
             .emplace(id, std::make_shared<ServerSession>(id, config_.queue_capacity,
                                                          stripes, &telemetry_))
             .first;
    telemetry_.gauge("service.sessions").set(static_cast<double>(sessions_.size()));
  }
  return it->second;
}

void ProfileServer::reply(ServerConnection& conn, FrameType type, std::string text) {
  std::lock_guard<std::mutex> lock(conn.reply_mu_);
  conn.replies_.push_back(Frame{type, std::move(text), {}});
}

void ProfileServer::dispatch(ServerConnection& conn, const FrameView& frame) {
  telemetry_.counter("service.frames").inc();
  switch (frame.type) {
    case FrameType::kHello:
      reply(conn, FrameType::kReply, "hello " + std::string(frame.payload));
      return;
    case FrameType::kOpenSession: {
      if (frame.payload.empty()) {
        reply(conn, FrameType::kError, "open-session: empty id");
        return;
      }
      const std::string id(frame.payload);
      conn.session_ = open_session(id);
      // Adopt the client's trace context; mint one locally for untraced
      // clients so every span this session produces is still causally
      // tagged (and deterministically so — mint hashes the session id).
      conn.session_->set_trace(frame.trace.valid()
                                   ? frame.trace.trace_id
                                   : support::TraceContext::mint(id).trace_id);
      reply(conn, FrameType::kReply, "ok session " + id);
      return;
    }
    case FrameType::kRegisterVm: {
      if (!conn.session_) {
        reply(conn, FrameType::kError, "register-vm: no session open");
        return;
      }
      const auto reg = parse_reg_line(std::string(frame.payload));
      if (!reg) {
        reply(conn, FrameType::kError,
              "register-vm: unparseable: " + std::string(frame.payload));
        return;
      }
      const core::RegisterStatus status = conn.session_->register_vm(*reg);
      if (status == core::RegisterStatus::kOk) {
        reply(conn, FrameType::kReply, "ok register " + std::to_string(reg->pid));
      } else {
        telemetry_.counter("service.registrations.rejected").inc();
        reply(conn, FrameType::kError,
              "register " + std::to_string(reg->pid) + ": " + core::to_string(status));
      }
      return;
    }
    case FrameType::kFile: {
      if (!conn.session_) {
        reply(conn, FrameType::kError, "file: no session open");
        return;
      }
      const std::size_t nl = frame.payload.find('\n');
      if (nl == std::string::npos || nl == 0) {
        reply(conn, FrameType::kError, "file: missing path header");
        return;
      }
      telemetry_.counter("service.files").inc();
      conn.session_->store_file(std::string(frame.payload.substr(0, nl)),
                                std::string(frame.payload.substr(nl + 1)));
      return;
    }
    case FrameType::kSampleBatch:
      if (!conn.session_) {
        reply(conn, FrameType::kError, "batch: no session open");
        return;
      }
      handle_batch(conn, frame.payload);
      return;
    case FrameType::kEndStream: {
      if (!conn.session_) {
        reply(conn, FrameType::kError, "end-stream: no session open");
        return;
      }
      conn.session_->mark_ended();
      reply(conn, FrameType::kReply, "ok end");
      return;
    }
    case FrameType::kQuery: {
      const std::uint64_t t0 = support::monotonic_ns();
      std::string result = query(std::string(frame.payload));
      const std::uint64_t t1 = support::monotonic_ns();
      telemetry_
          .histogram("service.query.latency_us", 0.0, 50.0, 64)
          .add(static_cast<double>(t1 - t0) / 1000.0);
      telemetry_.spans().record("service.query", "service", t0, t1,
                                support::SpanTracer::kNoArg, frame.trace.trace_id);
      reply(conn, FrameType::kReply, std::move(result));
      return;
    }
    case FrameType::kReply:
    case FrameType::kError:
      reply(conn, FrameType::kError, "unexpected frame type on server");
      return;
  }
}

void ProfileServer::handle_batch(ServerConnection& conn, std::string_view payload) {
  std::shared_ptr<ServerSession> session = conn.session_;
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    reply(conn, FrameType::kError, "batch: missing header");
    return;
  }
  char event_name[64] = {};
  unsigned long long declared = 0;
  const std::string header(payload.substr(0, nl));
  if (std::sscanf(header.c_str(), "batch %63s %llu", event_name, &declared) != 2) {
    reply(conn, FrameType::kError, "batch: bad header: " + header);
    return;
  }
  const auto event = event_from(event_name);
  if (!event) {
    reply(conn, FrameType::kError, "batch: unknown event: " + std::string(event_name));
    return;
  }

  Batch batch;
  batch.event = *event;
  batch.arena = rent_arena();
  batch.samples = support::ArenaVector<core::LoggedSample>(*batch.arena);
  bool enqueued = false;
  std::uint64_t record_count = 0;
  const std::uint64_t parse_t0 = support::monotonic_ns();
  {
    // Serial per-session parse: stream order and the per-event sequence
    // watermark are what make the online aggregate deterministic. The
    // samples decode zero-copy: wire-buffer view in, arena storage out.
    std::lock_guard<support::TracedMutex> lock(session->ingest_mu_);
    session->parsers_[hw::event_index(*event)].parse_into(payload.substr(nl + 1),
                                                          batch.samples);
    batch.ceilings = session->ceilings_;
    record_count = batch.samples.size();

    bool forced_overflow = false;
    if (config_.fault != nullptr) {
      const auto outcome =
          config_.fault->on_write("service/queue/" + session->id(), record_count);
      forced_overflow =
          outcome.result != support::FaultInjector::WriteOutcome::Result::kOk;
    }
    if (!forced_overflow) {
      batch.apply_seq = session->next_enqueue_seq_;
      if (config_.policy == OverloadPolicy::kBackpressure)
        enqueued = session->queue_.push(std::move(batch));
      else
        enqueued = session->queue_.try_push(std::move(batch));
      if (enqueued) ++session->next_enqueue_seq_;
    }
  }
  telemetry_.spans().record("service.batch.parse", "service", parse_t0,
                            support::monotonic_ns(), support::SpanTracer::kNoArg,
                            session->trace());

  session->frames_.fetch_add(1, std::memory_order_relaxed);
  if (enqueued) {
    session->batches_enqueued_.fetch_add(1, std::memory_order_relaxed);
  } else {
    session->batches_dropped_.fetch_add(1, std::memory_order_relaxed);
    session->records_dropped_.fetch_add(record_count, std::memory_order_relaxed);
  }
  if (enqueued) {
    telemetry_.counter("service.batches").inc();
    telemetry_.histogram("service.ingest.batch_records", 0.0, 64.0, 32)
        .add(static_cast<double>(record_count));
    pool_.submit([this, session] { process_one(session); });
  } else {
    telemetry_.counter("service.batches.dropped").inc();
    telemetry_.counter("service.records.dropped").inc(record_count);
    // Dropped before the queue took ownership: the arena comes back here.
    recycle_arena(std::move(batch.arena));
  }
}

void ProfileServer::process_one(std::shared_ptr<ServerSession> session) {
  std::optional<Batch> item = session->queue_.pop();
  if (!item) return;  // closed during shutdown
  Batch& batch = *item;

  BatchResult result;
  result.event = batch.event;
  result.records = batch.samples.size();

  const core::ArchiveResolver* resolver = session->resolver();
  if (resolver == nullptr) {
    // No archive manifest streamed yet: the batch cannot be attributed.
    // Apply an empty result so the sequence keeps flowing, and count it.
    telemetry_.counter("service.batches.unresolvable").inc();
    result.records = 0;
    session->apply(batch.apply_seq, std::move(result));
    recycle_arena(std::move(batch.arena));
    return;
  }

  if (batch.event == hw::EventKind::kObjDmiss) {
    // Object samples resolve against per-pid *object*-map indexes, pinned at
    // the same epoch ceiling the batch carried — a separate cache keyspace
    // ("#obj") so the PC hot path shares nothing with this branch. Objects
    // carry no caller PCs, so there is no arc/caller work here.
    PinnedJitSource obj;
    for (const auto& [pid, ceiling] : batch.ceilings) {
      const core::VmRegistration* reg = nullptr;
      for (const core::VmRegistration& r : resolver->registrations())
        if (r.pid == pid) { reg = &r; break; }
      if (reg == nullptr || reg->obj_map_dir.empty()) continue;
      const std::string dir = reg->obj_map_dir;
      obj.pins_[pid] = cache_.get(
          session->id() + "#obj", pid, ceiling, [session, dir, pid = pid]() {
            std::lock_guard<std::mutex> lock(session->world_mu_);
            return memprof::load_object_index(session->world_, dir, pid).index;
          });
    }
    const std::uint64_t resolve_t0 = support::monotonic_ns();
    core::RowMemo combined_memo;
    std::map<std::uint64_t, core::RowMemo> epoch_memos;
    core::Profile* epoch_profile = nullptr;
    core::RowMemo* epoch_memo = nullptr;
    std::uint64_t memo_epoch = ~0ull;
    for (const core::LoggedSample& sample : batch.samples) {
      const core::Resolution res = memprof::resolve_object(
          obj.index_for(sample.pid, sample.epoch), sample.pc, sample.epoch);
      combined_memo.add(result.partial, batch.event, sample.pid, sample.epoch, res);
      if (epoch_profile == nullptr || sample.epoch != memo_epoch) {
        memo_epoch = sample.epoch;
        epoch_profile = &result.epoch_partial[sample.epoch];
        epoch_memo = &epoch_memos[sample.epoch];
      }
      epoch_memo->add(*epoch_profile, batch.event, sample.pid, sample.epoch, res);
    }
    telemetry_.spans().record("service.batch.resolve", "service", resolve_t0,
                              support::monotonic_ns(), batch.apply_seq,
                              session->trace());
    telemetry_.counter("service.records").inc(result.records);
    session->apply(batch.apply_seq, std::move(result));
    recycle_arena(std::move(batch.arena));
    cache_.publish(telemetry_);
    return;
  }

  // Pin the code-map index generation each registered VM had at enqueue.
  PinnedJitSource jit;
  for (const auto& [pid, ceiling] : batch.ceilings) {
    const core::VmRegistration* reg = nullptr;
    for (const core::VmRegistration& r : resolver->registrations())
      if (r.pid == pid) { reg = &r; break; }
    if (reg == nullptr || reg->jit_map_dir.empty()) continue;
    const std::string dir = reg->jit_map_dir;
    jit.pins_[pid] = cache_.get(
        session->id(), pid, ceiling, [session, dir, pid = pid]() {
          std::lock_guard<std::mutex> lock(session->world_mu_);
          core::CodeMapIndex index;
          index.load(session->world_, dir, pid);
          return index;
        });
  }

  const std::uint64_t resolve_t0 = support::monotonic_ns();
  // Batched interning (DESIGN.md §14): repeated symbols inside one batch
  // bump cached row/arc indices; the partials' tables see one key-string
  // build per distinct row, not one per sample.
  core::RowMemo combined_memo;
  std::map<std::uint64_t, core::RowMemo> epoch_memos;
  core::Profile* epoch_profile = nullptr;
  core::RowMemo* epoch_memo = nullptr;
  std::uint64_t memo_epoch = ~0ull;
  // resolve_pc over a pinned index generation is deterministic per
  // (pc, pid, epoch), and callers repeat heavily within a batch.
  std::map<std::tuple<hw::Address, hw::Pid, std::uint64_t>, core::Resolution>
      caller_memo;
  std::map<std::tuple<hw::Address, hw::Pid, std::uint64_t, hw::Address, std::uint8_t>,
           std::size_t>
      arc_memo;
  for (const core::LoggedSample& sample : batch.samples) {
    const core::Resolution res = resolver->resolve(sample, &jit);
    combined_memo.add(result.partial, batch.event, sample.pid, sample.epoch, res);
    if (epoch_profile == nullptr || sample.epoch != memo_epoch) {
      memo_epoch = sample.epoch;
      epoch_profile = &result.epoch_partial[sample.epoch];
      epoch_memo = &epoch_memos[sample.epoch];
    }
    epoch_memo->add(*epoch_profile, batch.event, sample.pid, sample.epoch, res);
    if (sample.caller_pc != 0) {
      const auto caller_key =
          std::make_tuple(sample.caller_pc, sample.pid, sample.epoch);
      auto [cit, caller_new] = caller_memo.try_emplace(caller_key);
      if (caller_new)
        cit->second = resolver->resolve_pc(sample.caller_pc, hw::CpuMode::kUser,
                                           sample.pid, sample.epoch, &jit);
      const core::Resolution& caller = cit->second;
      if (res.symbol_size != 0) {
        const auto arc_key =
            std::make_tuple(sample.caller_pc, sample.pid, sample.epoch,
                            res.symbol_base, static_cast<std::uint8_t>(res.domain));
        auto [ait, arc_new] = arc_memo.try_emplace(arc_key, 0);
        if (arc_new) ait->second = result.arcs.arc_index(caller, res);
        result.arcs.bump_arc(ait->second);
      } else {
        // Unresolved bins share symbol_base 0 across distinct names — not
        // memoisable by identity, same rule as RowMemo.
        result.arcs.add_resolved(caller, res);
      }
    }
  }
  const std::uint64_t resolve_t1 = support::monotonic_ns();
  telemetry_.spans().record("service.batch.resolve", "service", resolve_t0, resolve_t1,
                            batch.apply_seq, session->trace());
  telemetry_.counter("service.records").inc(result.records);
  session->apply(batch.apply_seq, std::move(result));
  telemetry_.spans().record("service.batch.apply", "service", resolve_t1,
                            support::monotonic_ns(), batch.apply_seq, session->trace());
  recycle_arena(std::move(batch.arena));
  cache_.publish(telemetry_);
}

std::unique_ptr<support::Arena> ProfileServer::rent_arena() {
  {
    std::lock_guard<std::mutex> lock(arena_mu_);
    if (!arena_pool_.empty()) {
      std::unique_ptr<support::Arena> arena = std::move(arena_pool_.back());
      arena_pool_.pop_back();
      return arena;
    }
  }
  return std::make_unique<support::Arena>();
}

void ProfileServer::recycle_arena(std::unique_ptr<support::Arena> arena) {
  if (!arena) return;
  arena->reset();  // keeps the block chain for the next batch
  std::lock_guard<std::mutex> lock(arena_mu_);
  if (arena_pool_.size() < 64) arena_pool_.push_back(std::move(arena));
}

void ProfileServer::drain() { pool_.wait_idle(); }

std::vector<std::string> ProfileServer::session_ids() const {
  std::shared_lock<support::TracedSharedMutex> lock(sessions_mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

std::shared_ptr<ServerSession> ProfileServer::session(const std::string& id) const {
  std::shared_lock<support::TracedSharedMutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::string ProfileServer::session_report(const std::string& id, std::size_t top,
                                          const std::vector<hw::EventKind>& events) {
  std::shared_ptr<ServerSession> s = session(id);
  if (!s) return "error: no such session: " + id + "\n";
  return s->merged_profile().render(events, top);
}

std::string ProfileServer::query(const std::string& text) {
  telemetry_.counter("service.queries").inc();
  std::istringstream in(text);
  std::string verb;
  in >> verb;

  // Shared trailing options.
  auto scan_options = [&in](std::string& session_id, std::string& event_name,
                            std::size_t& top) {
    std::string word;
    while (in >> word) {
      if (word == "--session") in >> session_id;
      else if (word == "--event") in >> event_name;
      else if (word == "--top") in >> top;
    }
  };

  if (verb == "sessions") {
    support::TextTable table(
        {"Session", "Records", "Batches", "Dropped", "Torn", "VMs", "State"});
    for (const std::string& id : session_ids()) {
      std::shared_ptr<ServerSession> s = session(id);
      if (!s) continue;
      const SessionStats st = s->stats();
      table.add_row({id, std::to_string(st.records_ingested),
                     std::to_string(st.batches_applied),
                     std::to_string(st.batches_dropped), std::to_string(st.torn_frames),
                     std::to_string(st.registrations),
                     st.ended ? "ended" : "streaming"});
    }
    return table.render();
  }
  if (verb == "top") {
    std::size_t top = 20;
    in >> top;
    std::string session_id, event_name;
    scan_options(session_id, event_name, top);
    std::vector<hw::EventKind> events = kReportEvents;
    if (!event_name.empty()) {
      const auto e = event_from(event_name);
      if (!e) return "error: unknown event: " + event_name + "\n";
      events = {*e};
    }
    core::Profile merged;
    if (session_id.empty()) {
      for (const std::string& id : session_ids()) {
        std::shared_ptr<ServerSession> s = session(id);
        if (s) merged.merge(s->merged_profile());
      }
    } else {
      std::shared_ptr<ServerSession> s = session(session_id);
      if (!s) return "error: no such session: " + session_id + "\n";
      merged = s->merged_profile();
    }
    return merged.render(events, top);
  }
  if (verb == "since-epoch") {
    std::uint64_t since = 0;
    in >> since;
    std::size_t top = 20;
    std::string session_id, event_name;
    scan_options(session_id, event_name, top);
    core::Profile merged;
    if (session_id.empty()) {
      for (const std::string& id : session_ids()) {
        std::shared_ptr<ServerSession> s = session(id);
        if (s) merged.merge(s->profile_since_epoch(since));
      }
    } else {
      std::shared_ptr<ServerSession> s = session(session_id);
      if (!s) return "error: no such session: " + session_id + "\n";
      merged = s->profile_since_epoch(since);
    }
    return merged.render(kReportEvents, top);
  }
  if (verb == "arcs") {
    std::size_t top = 20;
    in >> top;
    std::string session_id, event_name;
    scan_options(session_id, event_name, top);
    support::TextTable table({"Samples", "Caller", "->", "Callee"});
    std::size_t emitted = 0;
    for (const std::string& id : session_ids()) {
      if (!session_id.empty() && id != session_id) continue;
      std::shared_ptr<ServerSession> s = session(id);
      if (!s) continue;
      for (const core::CallArc& arc : s->ranked_arcs()) {
        if (emitted >= top) break;
        table.add_row({std::to_string(arc.count),
                       arc.caller_image + ":" + arc.caller_symbol, "->",
                       arc.callee_image + ":" + arc.callee_symbol});
        ++emitted;
      }
    }
    return table.render();
  }
  if (verb == "memprof") {
    std::size_t top = 20;
    in >> top;
    std::string session_id, event_name;
    scan_options(session_id, event_name, top);
    memprof::SiteTable sites;
    core::Profile merged;
    bool matched = false;
    for (const std::string& id : session_ids()) {
      if (!session_id.empty() && id != session_id) continue;
      std::shared_ptr<ServerSession> s = session(id);
      if (!s) continue;
      matched = true;
      s->fold_object_sites(sites);
      merged.merge(s->merged_profile());
    }
    if (!session_id.empty() && !matched)
      return "error: no such session: " + session_id + "\n";
    return memprof::render_memprof(sites, merged, top);
  }
  if (verb == "snapshot") return snapshot();
  if (verb == "stats") {
    std::string word;
    bool as_json = false;
    while (in >> word)
      if (word == "--json") as_json = true;
    const support::TelemetrySnapshot snap = telemetry_.snapshot();
    return as_json ? snap.to_json() : snap.render_text();
  }
  if (verb == "trace") {
    // Host-side ring: monotonic_ns timestamps, so 1000 "cycles" per µs.
    return telemetry_.spans().to_chrome_json(1000.0);
  }
  return "error: unknown query: " + text + "\n";
}

std::string ProfileServer::snapshot() {
  ServiceSnapshot snap;
  for (const std::string& id : session_ids()) {
    std::shared_ptr<ServerSession> s = session(id);
    if (!s) continue;
    SessionSnapshot out;
    out.id = id;
    out.profile = s->merged_profile();
    out.epochs = s->epoch_profiles();
    snap.sessions.push_back(std::move(out));
  }
  return snap.serialize();
}

bool ProfileServer::export_state(const std::string& dir, std::size_t top) {
  const std::vector<std::string> ids = session_ids();
  if (ids.empty()) return false;
  os::Vfs out;
  for (const std::string& id : ids) {
    out.write(id + "/profile.txt", session_report(id, top, kReportEvents));
  }
  out.write("service.snap", snapshot());
  out.write("metrics.json", telemetry_.snapshot().to_json());
  out.write("trace.json", telemetry_.spans().to_chrome_json(1000.0));
  out.export_to_directory(dir);
  return true;
}

std::size_t ProfileServer::flush_to_store(store::ProfileStore& store,
                                          std::uint64_t tick) {
  std::size_t ingested = 0;
  for (const std::string& id : session_ids())
    ingested += flush_session_to_store(id, store, tick);
  telemetry_.counter("service.store.flushes").inc();
  return ingested;
}

std::size_t ProfileServer::flush_session_to_store(const std::string& id,
                                                  store::ProfileStore& store,
                                                  std::uint64_t tick) {
  std::shared_ptr<ServerSession> s = session(id);
  if (!s) return 0;
  const std::uint64_t t0 = support::monotonic_ns();
  ServerSession::FlushDelta delta = s->take_flush();
  if (!delta.any) return 0;
  store::IntervalProfile iv;
  iv.session = id;
  iv.tick_lo = iv.tick_hi = tick;
  iv.epoch_lo = delta.epoch_lo;
  iv.epoch_hi = delta.epoch_hi;
  iv.profile = std::move(delta.profile);
  if (!store.ingest(std::move(iv))) return 0;
  telemetry_.counter("service.store.intervals").inc();
  telemetry_.spans().record("service.flush", "service", t0, support::monotonic_ns(),
                            tick, s->trace());
  return 1;
}

bool ProfileServer::drop_session(const std::string& id) {
  std::lock_guard<support::TracedSharedMutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  // Connections still holding the shared_ptr keep it alive until they are
  // abandoned; the server itself forgets the session immediately, so
  // queries and flushes no longer see the partial state.
  sessions_.erase(it);
  telemetry_.gauge("service.sessions").set(static_cast<double>(sessions_.size()));
  telemetry_.counter("service.sessions.dropped").inc();
  return true;
}

}  // namespace viprof::service
