// Wire framing for the continuous-profiling service.
//
// Clients stream frames to the profile server: session control, VM
// registrations, code-map files, sample batches and queries. Framing
// extends the PR 1 crash-consistency discipline from files to the wire —
// every frame is length-prefixed and FNV-1a-checksummed, and the decoder
// never trusts bytes it cannot verify: a damaged frame is skipped by
// resynchronising on the next magic marker, with the tear and the skipped
// bytes *counted*, exactly as the sample-log reader salvages a torn file.
//
// Frame layout (little-endian):
//   offset 0  'V' 'F'        magic
//   offset 2  u8  type       FrameType
//   offset 3  u8  flags      bit 0: trace extension present; rest reserved 0
//   offset 4  u32 length     payload byte count (extension not included)
//   offset 8  [u64 trace_id, u64 parent_span]   iff flags bit 0 (16 bytes)
//   then      payload
//   then      u32 crc        FNV-1a over header + extension + payload
//
// The flags byte was the always-zero reserved byte through PR 6, so
// untraced frames are byte-identical to the historical encoding and old
// captures still decode. Unknown flag bits are treated as damage — a
// future extension the decoder does not understand must not half-parse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/traced_mutex.hpp"

namespace viprof::service {

enum class FrameType : std::uint8_t {
  kHello = 1,        // "client <name>"
  kOpenSession = 2,  // "session <id>"
  kRegisterVm = 3,   // one manifest "reg ..." line (archive format)
  kFile = 4,         // "<path>\n" + raw file bytes (code maps, boot maps, manifest)
  kSampleBatch = 5,  // "batch <EVENT> <line_count>\n" + raw sample-log lines
  kEndStream = 6,    // client is done; payload empty
  kQuery = 7,        // query text ("top 10", "sessions", ...)
  kReply = 8,        // server reply text
  kError = 9,        // server-side rejection text
};

inline const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kOpenSession: return "open-session";
    case FrameType::kRegisterVm: return "register-vm";
    case FrameType::kFile: return "file";
    case FrameType::kSampleBatch: return "sample-batch";
    case FrameType::kEndStream: return "end-stream";
    case FrameType::kQuery: return "query";
    case FrameType::kReply: return "reply";
    case FrameType::kError: return "error";
  }
  return "?";
}

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
  /// Trace extension contents; trace.valid() is false for untraced frames.
  support::TraceContext trace;
};

/// Zero-copy view of one verified frame: `payload` points into the
/// decoder's buffer and stays valid only until the next feed()/next()/
/// next_view() call on that decoder. The server's batch path decodes
/// through views — sample payloads go straight from the wire buffer into
/// the parser without the per-frame payload copy Frame carries.
struct FrameView {
  FrameType type = FrameType::kHello;
  std::string_view payload;
  support::TraceContext trace;
};

inline constexpr std::size_t kFrameHeaderBytes = 8;    // magic+type+flags+len
inline constexpr std::size_t kFrameTrailerBytes = 4;   // crc
inline constexpr std::size_t kFrameTraceExtBytes = 16; // trace_id + parent_span
inline constexpr std::uint8_t kFrameFlagTraced = 0x1;

/// Serialises one frame (header + payload + checksum). The overload with a
/// valid TraceContext sets the traced flag and inserts the 16-byte
/// extension; an invalid context encodes the historical untraced layout.
std::string encode_frame(FrameType type, const std::string& payload);
std::string encode_frame(FrameType type, const std::string& payload,
                         const support::TraceContext& trace);

/// Streaming decoder. feed() raw bytes in any chunking; next() yields
/// verified frames in order. Damage (bad magic, bad checksum, impossible
/// length) is skipped by scanning forward for the next magic marker.
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size) {
    compact();
    buffer_.append(data, size);
  }
  void feed(const std::string& bytes) {
    compact();
    buffer_ += bytes;
  }

  /// True when a complete verified frame was extracted into `out`
  /// (payload copied out of the buffer).
  bool next(Frame& out);

  /// Zero-copy variant: `out.payload` views the internal buffer and is
  /// invalidated by the next feed()/next()/next_view(). Consumed bytes are
  /// reclaimed lazily on the next call, so decoding N buffered frames
  /// costs one buffer compaction, not N head-erase memmoves.
  bool next_view(FrameView& out);

  /// Frames discarded for framing/checksum damage.
  std::uint64_t torn_frames() const { return torn_frames_; }
  /// Bytes skipped while resynchronising past damage.
  std::uint64_t skipped_bytes() const { return skipped_bytes_; }
  /// Bytes buffered but not yet decodable (a frame still in flight).
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  /// Drops `n` leading buffer bytes as damage and rescans for magic.
  void skip_damage(std::size_t n);
  /// Erases bytes already handed out through next_view().
  void compact() {
    if (consumed_ != 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
  }

  std::string buffer_;
  std::size_t consumed_ = 0;  // leading bytes owned by the last next_view()
  std::uint64_t torn_frames_ = 0;
  std::uint64_t skipped_bytes_ = 0;
};

}  // namespace viprof::service
