#include "service/code_map_cache.hpp"

namespace viprof::service {

CodeMapCache::IndexPtr CodeMapCache::get(const std::string& session, hw::Pid pid,
                                         std::uint64_t ceiling,
                                         const Builder& build) {
  std::string key;
  key.reserve(session.size() + 24);
  key += session;
  key += '/';
  key += std::to_string(pid);
  key += '@';
  key += std::to_string(ceiling);

  // Lock-free fast path: resolve against the current immutable snapshot.
  {
    const TablePtr table = snapshot_.load(std::memory_order_acquire);
    const auto it = table->entries.find(key);
    if (it != table->entries.end()) {
      it->second->last_used.store(
          tick_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->index;
    }
  }

  // Miss: writers serialize; re-check under the lock so concurrent misses
  // on one key build once.
  std::lock_guard<support::TracedMutex> lock(mu_);
  const TablePtr table = snapshot_.load(std::memory_order_acquire);
  const auto it = table->entries.find(key);
  if (it != table->entries.end()) {
    it->second->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                                std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->index;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  auto index = std::make_shared<core::CodeMapIndex>(build());
  index->prepare();  // workers only run const queries afterwards
  auto entry = std::make_shared<Entry>();
  entry->index = index;
  entry->last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);

  // Copy-on-write install: copy the shared_ptr map (entries themselves are
  // shared), evict down to capacity, insert, swap the snapshot.
  auto next = std::make_shared<Table>(*table);
  while (next->entries.size() >= capacity_) {
    auto victim = next->entries.begin();
    std::uint64_t oldest = ~0ull;
    for (auto cand = next->entries.begin(); cand != next->entries.end(); ++cand) {
      const std::uint64_t used =
          cand->second->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = cand;
      }
    }
    next->entries.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  next->entries.emplace(std::move(key), std::move(entry));
  snapshot_.store(TablePtr(std::move(next)), std::memory_order_release);
  return index;
}

void CodeMapCache::publish(support::Telemetry& telemetry) {
  std::uint64_t dh, dm, de;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    dh = hits() - published_hits_;
    dm = misses() - published_misses_;
    de = evictions() - published_evictions_;
    published_hits_ += dh;
    published_misses_ += dm;
    published_evictions_ += de;
  }
  // counter() registers on first use, so all three appear in a snapshot
  // (and in `viprof_stat dump`) even when a bin is still zero.
  telemetry.counter("service.map_cache.hits").inc(dh);
  telemetry.counter("service.map_cache.misses").inc(dm);
  telemetry.counter("service.map_cache.evictions").inc(de);
}

}  // namespace viprof::service
