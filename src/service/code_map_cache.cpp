#include "service/code_map_cache.hpp"

namespace viprof::service {

CodeMapCache::IndexPtr CodeMapCache::get(const std::string& session, hw::Pid pid,
                                         std::uint64_t ceiling,
                                         const Builder& build) {
  const std::string key =
      session + "/" + std::to_string(pid) + "@" + std::to_string(ceiling);
  std::lock_guard<std::mutex> lock(mu_);
  if (IndexPtr* hit = cache_.get(key)) return *hit;
  auto index = std::make_shared<core::CodeMapIndex>(build());
  index->prepare();  // workers only run const queries afterwards
  return cache_.put(key, std::move(index));
}

void CodeMapCache::publish(support::Telemetry& telemetry) {
  std::uint64_t h, m, e;
  {
    std::lock_guard<std::mutex> lock(mu_);
    h = cache_.hits();
    m = cache_.misses();
    e = cache_.evictions();
  }
  telemetry.gauge("service.code_map_cache.hits").set(static_cast<double>(h));
  telemetry.gauge("service.code_map_cache.misses").set(static_cast<double>(m));
  telemetry.gauge("service.code_map_cache.evictions").set(static_cast<double>(e));
}

std::uint64_t CodeMapCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.hits();
}
std::uint64_t CodeMapCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.misses();
}
std::uint64_t CodeMapCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.evictions();
}

}  // namespace viprof::service
