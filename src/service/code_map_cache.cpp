#include "service/code_map_cache.hpp"

namespace viprof::service {

CodeMapCache::IndexPtr CodeMapCache::get(const std::string& session, hw::Pid pid,
                                         std::uint64_t ceiling,
                                         const Builder& build) {
  const std::string key =
      session + "/" + std::to_string(pid) + "@" + std::to_string(ceiling);
  std::lock_guard<support::TracedMutex> lock(mu_);
  if (IndexPtr* hit = cache_.get(key)) return *hit;
  auto index = std::make_shared<core::CodeMapIndex>(build());
  index->prepare();  // workers only run const queries afterwards
  return cache_.put(key, std::move(index));
}

void CodeMapCache::publish(support::Telemetry& telemetry) {
  std::uint64_t dh, dm, de;
  {
    std::lock_guard<support::TracedMutex> lock(mu_);
    dh = cache_.hits() - published_hits_;
    dm = cache_.misses() - published_misses_;
    de = cache_.evictions() - published_evictions_;
    published_hits_ += dh;
    published_misses_ += dm;
    published_evictions_ += de;
  }
  // counter() registers on first use, so all three appear in a snapshot
  // (and in `viprof_stat dump`) even when a bin is still zero.
  telemetry.counter("service.map_cache.hits").inc(dh);
  telemetry.counter("service.map_cache.misses").inc(dm);
  telemetry.counter("service.map_cache.evictions").inc(de);
}

std::uint64_t CodeMapCache::hits() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return cache_.hits();
}
std::uint64_t CodeMapCache::misses() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return cache_.misses();
}
std::uint64_t CodeMapCache::evictions() const {
  std::lock_guard<support::TracedMutex> lock(mu_);
  return cache_.evictions();
}

}  // namespace viprof::service
