#include "service/session.hpp"

#include <algorithm>
#include <optional>

#include "core/code_map.hpp"
#include "memprof/object_map.hpp"

namespace viprof::service {

namespace {

/// "<dir>/<pid>/map.<epoch>" → pid, from the second-to-last component.
std::optional<hw::Pid> pid_from_map_path(const std::string& path) {
  const std::size_t last = path.rfind('/');
  if (last == std::string::npos || last == 0) return std::nullopt;
  const std::size_t prev = path.rfind('/', last - 1);
  const std::size_t begin = prev == std::string::npos ? 0 : prev + 1;
  if (begin >= last) return std::nullopt;
  hw::Pid pid = 0;
  for (std::size_t i = begin; i < last; ++i) {
    if (path[i] < '0' || path[i] > '9') return std::nullopt;
    pid = pid * 10 + static_cast<hw::Pid>(path[i] - '0');
  }
  return pid;
}

}  // namespace

SessionStats ServerSession::stats() const {
  SessionStats out;
  out.frames = frames_.load(std::memory_order_relaxed);
  out.torn_frames = torn_frames_.load(std::memory_order_relaxed);
  out.files = files_.load(std::memory_order_relaxed);
  out.batches_enqueued = batches_enqueued_.load(std::memory_order_relaxed);
  out.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  out.batches_dropped = batches_dropped_.load(std::memory_order_relaxed);
  out.records_ingested = records_ingested_.load(std::memory_order_relaxed);
  out.records_dropped = records_dropped_.load(std::memory_order_relaxed);
  out.registrations = registrations_.load(std::memory_order_relaxed);
  out.registrations_rejected = registrations_rejected_.load(std::memory_order_relaxed);
  out.ended = ended_.load(std::memory_order_relaxed);
  return out;
}

core::RegisterStatus ServerSession::register_vm(const core::VmRegistration& reg) {
  core::RegisterStatus status;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    status = table_.add(reg);
  }
  if (status == core::RegisterStatus::kOk)
    registrations_.fetch_add(1, std::memory_order_relaxed);
  else
    registrations_rejected_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

bool ServerSession::deregister_vm(hw::Pid pid) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return table_.remove(pid);
}

std::uint64_t ServerSession::registration_version() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return table_.version();
}

void ServerSession::store_file(const std::string& path, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(world_mu_);
    world_.write(path, std::move(bytes));
  }
  const auto epoch = core::CodeMapFile::epoch_from_path(path);
  const auto pid = epoch ? pid_from_map_path(path) : std::nullopt;
  if (epoch && pid) {
    std::lock_guard<support::TracedMutex> lock(ingest_mu_);
    auto [it, inserted] = ceilings_.try_emplace(*pid, *epoch);
    if (!inserted && *epoch > it->second) it->second = *epoch;
  }
  files_.fetch_add(1, std::memory_order_relaxed);
}

const core::ArchiveResolver* ServerSession::resolver() {
  std::lock_guard<std::mutex> lock(world_mu_);
  if (!resolver_ && world_.exists("archive/manifest")) {
    resolver_ = std::make_unique<core::ArchiveResolver>(
        world_, "archive", /*vm_aware=*/true, /*load_jit_maps=*/false);
  }
  return resolver_.get();
}

core::Profile ServerSession::merged_profile() const {
  core::SeqProfile combined[hw::kEventKindCount];
  for (const auto& stripe : stripes_) {
    std::lock_guard<support::TracedMutex> lock(stripe->mu);
    for (std::size_t e = 0; e < hw::kEventKindCount; ++e)
      combined[e].fold(stripe->event_profiles[e]);
  }
  core::Profile merged;
  for (hw::EventKind event : hw::kAllEventKinds)
    merged.merge(combined[hw::event_index(event)].ordered());
  return merged;
}

core::Profile ServerSession::profile_since_epoch(std::uint64_t since) const {
  std::map<std::uint64_t, core::SeqProfile> combined;
  for (const auto& stripe : stripes_) {
    std::lock_guard<support::TracedMutex> lock(stripe->mu);
    for (const auto& [epoch, partial] : stripe->epoch_profiles)
      if (epoch >= since) combined[epoch].fold(partial);
  }
  core::Profile merged;
  for (const auto& [epoch, partial] : combined) merged.merge(partial.ordered());
  return merged;
}

std::map<std::uint64_t, core::Profile> ServerSession::epoch_profiles() const {
  std::map<std::uint64_t, core::SeqProfile> combined;
  for (const auto& stripe : stripes_) {
    std::lock_guard<support::TracedMutex> lock(stripe->mu);
    for (const auto& [epoch, partial] : stripe->epoch_profiles)
      combined[epoch].fold(partial);
  }
  std::map<std::uint64_t, core::Profile> out;
  for (const auto& [epoch, partial] : combined) out.emplace(epoch, partial.ordered());
  return out;
}

std::vector<core::CallArc> ServerSession::ranked_arcs() const {
  core::SeqCallGraph combined;
  for (const auto& stripe : stripes_) {
    std::lock_guard<support::TracedMutex> lock(stripe->mu);
    combined.fold(stripe->graph);
  }
  return combined.ordered().ranked();
}

void ServerSession::fold_object_sites(memprof::SiteTable& sites) const {
  std::vector<core::VmRegistration> regs;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    regs = table_.all();
  }
  std::lock_guard<std::mutex> lock(world_mu_);
  for (const core::VmRegistration& reg : regs) {
    if (reg.obj_map_dir.empty()) continue;
    memprof::ObjectIndexLoad load =
        memprof::load_object_index(world_, reg.obj_map_dir, reg.pid);
    for (const memprof::ObjectMapFile& file : load.files)
      sites.ingest(id_, reg.pid, file);
  }
}

ServerSession::FlushDelta ServerSession::take_flush() {
  core::SeqProfile combined[hw::kEventKindCount];
  FlushDelta delta;
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<support::TracedMutex> lock(stripe->mu);
    for (std::size_t e = 0; e < hw::kEventKindCount; ++e) {
      combined[e].fold(stripe->pending_event[e]);
      stripe->pending_event[e] = core::SeqProfile{};
    }
    lo = std::min(lo, stripe->pending_epoch_lo);
    hi = std::max(hi, stripe->pending_epoch_hi);
    delta.records += stripe->pending_records;
    delta.any = delta.any || stripe->pending_any;
    stripe->pending_epoch_lo = ~0ull;
    stripe->pending_epoch_hi = 0;
    stripe->pending_records = 0;
    stripe->pending_any = false;
  }
  if (lo <= hi) {
    delta.epoch_lo = lo;
    delta.epoch_hi = hi;
  }
  // Canonical event order, same as merged_profile(): differently-timed
  // flushes of the same stream fold back to the same row order.
  for (hw::EventKind event : hw::kAllEventKinds)
    delta.profile.merge(combined[hw::event_index(event)].ordered());
  return delta;
}

void ServerSession::apply(std::uint64_t apply_seq, BatchResult result) {
  Stripe& stripe = *stripes_[apply_seq % stripes_.size()];
  {
    std::lock_guard<support::TracedMutex> lock(stripe.mu);
    const std::size_t e = hw::event_index(result.event);
    stripe.event_profiles[e].fold(apply_seq, result.partial);
    stripe.pending_event[e].fold(apply_seq, result.partial);
    stripe.pending_records += result.records;
    if (result.partial.row_count() != 0) stripe.pending_any = true;
    for (const auto& [epoch, partial] : result.epoch_partial) {
      stripe.epoch_profiles[epoch].fold(apply_seq, partial);
      stripe.pending_epoch_lo = std::min(stripe.pending_epoch_lo, epoch);
      stripe.pending_epoch_hi = std::max(stripe.pending_epoch_hi, epoch);
    }
    stripe.graph.fold(apply_seq, result.arcs);
  }
  records_ingested_.fetch_add(result.records, std::memory_order_relaxed);
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace viprof::service
