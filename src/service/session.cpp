#include "service/session.hpp"

#include <algorithm>
#include <optional>

#include "core/code_map.hpp"

namespace viprof::service {

namespace {

/// "<dir>/<pid>/map.<epoch>" → pid, from the second-to-last component.
std::optional<hw::Pid> pid_from_map_path(const std::string& path) {
  const std::size_t last = path.rfind('/');
  if (last == std::string::npos || last == 0) return std::nullopt;
  const std::size_t prev = path.rfind('/', last - 1);
  const std::size_t begin = prev == std::string::npos ? 0 : prev + 1;
  if (begin >= last) return std::nullopt;
  hw::Pid pid = 0;
  for (std::size_t i = begin; i < last; ++i) {
    if (path[i] < '0' || path[i] > '9') return std::nullopt;
    pid = pid * 10 + static_cast<hw::Pid>(path[i] - '0');
  }
  return pid;
}

}  // namespace

core::RegisterStatus ServerSession::register_vm(const core::VmRegistration& reg) {
  core::RegisterStatus status;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    status = table_.add(reg);
  }
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  if (status == core::RegisterStatus::kOk)
    ++stats_.registrations;
  else
    ++stats_.registrations_rejected;
  return status;
}

bool ServerSession::deregister_vm(hw::Pid pid) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return table_.remove(pid);
}

std::uint64_t ServerSession::registration_version() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return table_.version();
}

void ServerSession::store_file(const std::string& path, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(world_mu_);
    world_.write(path, std::move(bytes));
  }
  const auto epoch = core::CodeMapFile::epoch_from_path(path);
  const auto pid = epoch ? pid_from_map_path(path) : std::nullopt;
  if (epoch && pid) {
    std::lock_guard<support::TracedMutex> lock(ingest_mu_);
    auto [it, inserted] = ceilings_.try_emplace(*pid, *epoch);
    if (!inserted && *epoch > it->second) it->second = *epoch;
  }
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  ++stats_.files;
}

const core::ArchiveResolver* ServerSession::resolver() {
  std::lock_guard<std::mutex> lock(world_mu_);
  if (!resolver_ && world_.exists("archive/manifest")) {
    resolver_ = std::make_unique<core::ArchiveResolver>(
        world_, "archive", /*vm_aware=*/true, /*load_jit_maps=*/false);
  }
  return resolver_.get();
}

core::Profile ServerSession::merged_profile() const {
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  core::Profile merged;
  for (hw::EventKind event : hw::kAllEventKinds)
    merged.merge(event_profiles_[hw::event_index(event)]);
  return merged;
}

core::Profile ServerSession::profile_since_epoch(std::uint64_t since) const {
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  core::Profile merged;
  for (const auto& [epoch, profile] : epoch_profiles_)
    if (epoch >= since) merged.merge(profile);
  return merged;
}

std::vector<core::CallArc> ServerSession::ranked_arcs() const {
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  return graph_.ranked();
}

ServerSession::FlushDelta ServerSession::take_flush() {
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  FlushDelta delta;
  delta.any = pending_any_;
  delta.records = pending_records_;
  if (pending_epoch_lo_ <= pending_epoch_hi_) {
    delta.epoch_lo = pending_epoch_lo_;
    delta.epoch_hi = pending_epoch_hi_;
  }
  // Canonical event order, same as merged_profile(): differently-timed
  // flushes of the same stream fold back to the same row order.
  for (hw::EventKind event : hw::kAllEventKinds) {
    delta.profile.merge(pending_event_[hw::event_index(event)]);
    pending_event_[hw::event_index(event)] = core::Profile{};
  }
  pending_epoch_lo_ = ~0ull;
  pending_epoch_hi_ = 0;
  pending_records_ = 0;
  pending_any_ = false;
  return delta;
}

void ServerSession::apply(std::uint64_t apply_seq, BatchResult result) {
  std::lock_guard<support::TracedMutex> lock(agg_mu_);
  reorder_.emplace(apply_seq, std::move(result));
  while (true) {
    auto it = reorder_.find(next_apply_seq_);
    if (it == reorder_.end()) break;
    BatchResult& r = it->second;
    event_profiles_[hw::event_index(r.event)].merge(r.partial);
    pending_event_[hw::event_index(r.event)].merge(r.partial);
    pending_records_ += r.records;
    if (r.partial.row_count() != 0) pending_any_ = true;
    for (auto& [epoch, partial] : r.epoch_partial) {
      epoch_profiles_[epoch].merge(partial);
      pending_epoch_lo_ = std::min(pending_epoch_lo_, epoch);
      pending_epoch_hi_ = std::max(pending_epoch_hi_, epoch);
    }
    for (const auto& [caller, callee] : r.arcs) graph_.add_resolved(caller, callee);
    stats_.records_ingested += r.records;
    ++stats_.batches_applied;
    reorder_.erase(it);
    ++next_apply_seq_;
  }
  applied_cv_.notify_all();
}

}  // namespace viprof::service
