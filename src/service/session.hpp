// Server-side state of one streamed profiling session.
//
// A session is one client's world: the files it streamed in (archive
// manifest, boot maps, epoch code maps) in a private VFS, its registration
// table, the per-event stream parsers with their sequence watermarks, a
// bounded batch queue toward the ingest workers, and the rolling
// aggregates. Three locks, never nested with each other:
//   ingest_mu_  — parsers, epoch ceilings, enqueue sequencing (receiver)
//   world_mu_   — the VFS and the lazily built resolver (receiver + workers)
//   agg_mu_     — aggregates, reorder buffer, stats (workers + queries)
// ingest_mu_ and agg_mu_ are contention suspects (ROADMAP item 1), so they
// are TracedMutexes: when the server hands the session a Telemetry, their
// wait times surface as lock.service.session.{ingest,agg}.wait_ns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <utility>
#include <vector>

#include "core/archive.hpp"
#include "core/callgraph.hpp"
#include "core/registration.hpp"
#include "core/report.hpp"
#include "core/sample_log.hpp"
#include "support/bounded_queue.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::service {

/// One parsed sample batch queued for ingest. `ceilings` snapshots, per
/// pid, the highest code-map epoch announced before this batch — the
/// worker resolves against exactly that generation of the map index.
struct Batch {
  hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
  std::vector<core::LoggedSample> samples;
  std::uint64_t apply_seq = 0;
  std::map<hw::Pid, std::uint64_t> ceilings;
};

/// A worker's resolved batch, waiting in the reorder buffer. Applying
/// results in apply_seq order makes the rolling aggregate independent of
/// worker scheduling — the online/offline identity hinges on it.
struct BatchResult {
  hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
  core::Profile partial;
  std::map<std::uint64_t, core::Profile> epoch_partial;
  std::vector<std::pair<core::Resolution, core::Resolution>> arcs;  // caller, callee
  std::uint64_t records = 0;
};

struct SessionStats {
  std::uint64_t frames = 0;
  std::uint64_t torn_frames = 0;      // wire framing damage (decoder skips)
  std::uint64_t files = 0;
  std::uint64_t batches_enqueued = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t batches_dropped = 0;  // overload drops (kDropNewest / fault)
  std::uint64_t records_ingested = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t registrations = 0;
  std::uint64_t registrations_rejected = 0;
  bool ended = false;
};

class ProfileServer;

class ServerSession {
 public:
  /// `telemetry` (may be null) hosts this session's lock contention
  /// metrics and queue-depth instrumentation; the server passes its own
  /// hub so every session folds into one observable registry.
  ServerSession(std::string id, std::size_t queue_capacity,
                support::Telemetry* telemetry = nullptr)
      : id_(std::move(id)), queue_(queue_capacity) {
    if (telemetry != nullptr) {
      ingest_mu_.attach(*telemetry);
      agg_mu_.attach(*telemetry);
      queue_.instrument(&telemetry->gauge("service.queue.depth"),
                        &telemetry->histogram("service.queue.depth_hist", 0.0, 1.0, 64));
    }
  }

  const std::string& id() const { return id_; }

  /// Trace context minted (or received over the wire) for this session;
  /// every span the server records on its behalf carries this id.
  void set_trace(std::uint64_t trace_id) {
    trace_id_.store(trace_id, std::memory_order_relaxed);
  }
  std::uint64_t trace() const { return trace_id_.load(std::memory_order_relaxed); }

  SessionStats stats() const {
    std::lock_guard<support::TracedMutex> lock(agg_mu_);
    return stats_;
  }

  /// Registered VMs (wire kRegisterVm frames), with hardening semantics.
  core::RegisterStatus register_vm(const core::VmRegistration& reg);
  bool deregister_vm(hw::Pid pid);
  std::uint64_t registration_version() const;

  /// Stores a streamed file in the session world; code-map paths bump the
  /// owning pid's epoch ceiling.
  void store_file(const std::string& path, std::string bytes);

  /// The session's resolver, built from the streamed archive manifest on
  /// first use (jit maps stay external — workers resolve through the
  /// shared cache). nullptr until the manifest has been streamed.
  const core::ArchiveResolver* resolver();

  /// Combined rolling profile, per-event profiles merged in canonical
  /// event order (matches offline single-profile aggregation row order).
  core::Profile merged_profile() const;

  /// Merge of the per-epoch profiles with epoch >= `since`.
  core::Profile profile_since_epoch(std::uint64_t since) const;

  /// Rolling cross-layer call graph (arc list copy).
  std::vector<core::CallArc> ranked_arcs() const;

  /// Everything applied since the previous take_flush(): the increment the
  /// persistent profile store ingests as one interval (DESIGN.md §11).
  struct FlushDelta {
    core::Profile profile;  // per-event deltas merged in canonical event order
    std::uint64_t epoch_lo = 0, epoch_hi = 0;  // epochs seen in the delta
    std::uint64_t records = 0;
    bool any = false;
  };

  /// Returns and clears the accumulated delta. Batches are folded into the
  /// pending delta in apply_seq order, so consecutive flush intervals
  /// merged back together reproduce the session's full profile exactly.
  FlushDelta take_flush();

  /// Copies of the per-epoch profiles (snapshot serialisation).
  std::map<std::uint64_t, core::Profile> epoch_profiles() const {
    std::lock_guard<support::TracedMutex> lock(agg_mu_);
    return epoch_profiles_;
  }

  std::uint64_t ingested_records() const {
    std::lock_guard<support::TracedMutex> lock(agg_mu_);
    return stats_.records_ingested;
  }

  /// Wire-level damage charged to this session (decoder skips, mid-frame
  /// disconnects).
  void count_torn_frames(std::uint64_t n) {
    std::lock_guard<support::TracedMutex> lock(agg_mu_);
    stats_.torn_frames += n;
  }

  bool ended() const {
    std::lock_guard<support::TracedMutex> lock(agg_mu_);
    return stats_.ended;
  }

 private:
  friend class ProfileServer;

  /// Applies `result` and any consecutively ready successors, in
  /// apply_seq order. Called by workers under no other lock.
  void apply(std::uint64_t apply_seq, BatchResult result);

  const std::string id_;
  std::atomic<std::uint64_t> trace_id_{0};

  // ---- receiver side (ingest_mu_)
  mutable support::TracedMutex ingest_mu_{"service.session.ingest"};
  core::SampleStreamParser parsers_[hw::kEventKindCount];
  std::map<hw::Pid, std::uint64_t> ceilings_;
  std::uint64_t next_enqueue_seq_ = 0;

  // ---- streamed world (world_mu_)
  mutable std::mutex world_mu_;
  os::Vfs world_;
  std::unique_ptr<core::ArchiveResolver> resolver_;

  // ---- registrations (own lock; consulted from receiver and queries)
  mutable std::mutex reg_mu_;
  core::RegistrationTable table_;

  // ---- ingest queue (self-locked)
  support::BoundedQueue<Batch> queue_;

  // ---- aggregates (agg_mu_)
  mutable support::TracedMutex agg_mu_{"service.session.agg"};
  std::condition_variable_any applied_cv_;
  std::map<std::uint64_t, BatchResult> reorder_;
  std::uint64_t next_apply_seq_ = 0;
  core::Profile event_profiles_[hw::kEventKindCount];
  std::map<std::uint64_t, core::Profile> epoch_profiles_;
  core::CallGraph graph_;
  SessionStats stats_;
  // Flush-to-store accumulation (agg_mu_): per-event deltas since the last
  // take_flush(), folded in apply order.
  core::Profile pending_event_[hw::kEventKindCount];
  std::uint64_t pending_epoch_lo_ = ~0ull, pending_epoch_hi_ = 0;  // lo>hi: none
  std::uint64_t pending_records_ = 0;
  bool pending_any_ = false;
};

}  // namespace viprof::service
