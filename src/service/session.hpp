// Server-side state of one streamed profiling session.
//
// A session is one client's world: the files it streamed in (archive
// manifest, boot maps, epoch code maps) in a private VFS, its registration
// table, the per-event stream parsers with their sequence watermarks, a
// bounded batch queue toward the ingest workers, and the rolling
// aggregates. Locks, never nested with each other:
//   ingest_mu_   — parsers, epoch ceilings, enqueue sequencing (receiver)
//   world_mu_    — the VFS and the lazily built resolver (receiver + workers)
//   stripe locks — one per aggregation stripe (workers + queries)
//
// Aggregation is striped (DESIGN.md §14): a batch lands on stripe
// (apply_seq % stripes) and folds into that stripe's order-recovering
// SeqProfile/SeqCallGraph accumulators under the stripe's own lock, so
// concurrent workers only collide when their sequence numbers share a
// stripe. There is no reorder buffer and no apply-order requirement —
// every row remembers its first-occurrence (seq, idx), and queries merge
// the stripes and sort that provenance back into the exact serial order.
// The online answer stays byte-identical to offline viprof_report at any
// thread count, stripe count and worker interleaving. Every stripe lock
// shares the TracedMutex name "service.session.agg", so the PR 7
// contention evidence reads on the same key before and after.
//
// Counters (SessionStats) are plain atomics: stats() composes a snapshot
// without stopping ingest.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/archive.hpp"
#include "core/callgraph.hpp"
#include "core/registration.hpp"
#include "core/report.hpp"
#include "core/sample_log.hpp"
#include "core/striped_agg.hpp"
#include "memprof/site_table.hpp"
#include "support/arena.hpp"
#include "support/bounded_queue.hpp"
#include "support/traced_mutex.hpp"

namespace viprof::service {

/// One parsed sample batch queued for ingest. `ceilings` snapshots, per
/// pid, the highest code-map epoch announced before this batch — the
/// worker resolves against exactly that generation of the map index.
/// Samples are decoded straight into the batch's arena (one bump-allocated
/// block chain per batch, recycled by the server after apply) — the wire
/// payload is never copied into per-frame heap vectors.
struct Batch {
  hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
  support::ArenaVector<core::LoggedSample> samples;
  std::unique_ptr<support::Arena> arena;  // owns the samples' storage
  std::uint64_t apply_seq = 0;
  std::map<hw::Pid, std::uint64_t> ceilings;
};

/// A worker's resolved batch: partial aggregates interned per batch (one
/// shared-table fold per distinct row, not per sample) and handed to
/// apply() in any order.
struct BatchResult {
  hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
  core::Profile partial;
  std::map<std::uint64_t, core::Profile> epoch_partial;
  core::CallGraph arcs;  // resolver-less partial graph
  std::uint64_t records = 0;
};

struct SessionStats {
  std::uint64_t frames = 0;
  std::uint64_t torn_frames = 0;      // wire framing damage (decoder skips)
  std::uint64_t files = 0;
  std::uint64_t batches_enqueued = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t batches_dropped = 0;  // overload drops (kDropNewest / fault)
  std::uint64_t records_ingested = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t registrations = 0;
  std::uint64_t registrations_rejected = 0;
  bool ended = false;
};

class ProfileServer;

class ServerSession {
 public:
  /// `stripes` aggregation stripes (clamped to >= 1). `telemetry` (may be
  /// null) hosts this session's lock contention metrics and queue-depth
  /// instrumentation; the server passes its own hub so every session folds
  /// into one observable registry.
  ServerSession(std::string id, std::size_t queue_capacity, std::size_t stripes = 1,
                support::Telemetry* telemetry = nullptr)
      : id_(std::move(id)), queue_(queue_capacity) {
    if (stripes == 0) stripes = 1;
    stripes_.reserve(stripes);
    for (std::size_t i = 0; i < stripes; ++i)
      stripes_.push_back(std::make_unique<Stripe>());
    if (telemetry != nullptr) {
      ingest_mu_.attach(*telemetry);
      for (auto& stripe : stripes_) stripe->mu.attach(*telemetry);
      queue_.instrument(&telemetry->gauge("service.queue.depth"),
                        &telemetry->histogram("service.queue.depth_hist", 0.0, 1.0, 64));
    }
  }

  const std::string& id() const { return id_; }

  std::size_t stripe_count() const { return stripes_.size(); }

  /// Trace context minted (or received over the wire) for this session;
  /// every span the server records on its behalf carries this id.
  void set_trace(std::uint64_t trace_id) {
    trace_id_.store(trace_id, std::memory_order_relaxed);
  }
  std::uint64_t trace() const { return trace_id_.load(std::memory_order_relaxed); }

  SessionStats stats() const;

  /// Registered VMs (wire kRegisterVm frames), with hardening semantics.
  core::RegisterStatus register_vm(const core::VmRegistration& reg);
  bool deregister_vm(hw::Pid pid);
  std::uint64_t registration_version() const;

  /// Stores a streamed file in the session world; code-map paths bump the
  /// owning pid's epoch ceiling.
  void store_file(const std::string& path, std::string bytes);

  /// The session's resolver, built from the streamed archive manifest on
  /// first use (jit maps stay external — workers resolve through the
  /// shared cache). nullptr until the manifest has been streamed.
  const core::ArchiveResolver* resolver();

  /// Combined rolling profile, per-event profiles merged in canonical
  /// event order (matches offline single-profile aggregation row order).
  core::Profile merged_profile() const;

  /// Merge of the per-epoch profiles with epoch >= `since`.
  core::Profile profile_since_epoch(std::uint64_t since) const;

  /// Rolling cross-layer call graph (arc list copy).
  std::vector<core::CallArc> ranked_arcs() const;

  /// Folds the allocation-site table derived from every streamed object
  /// map of every registered VM into `sites` (additive across sessions;
  /// per-(pid, obj_id) dedup makes re-folds idempotent).
  void fold_object_sites(memprof::SiteTable& sites) const;

  /// Everything applied since the previous take_flush(): the increment the
  /// persistent profile store ingests as one interval (DESIGN.md §11).
  struct FlushDelta {
    core::Profile profile;  // per-event deltas merged in canonical event order
    std::uint64_t epoch_lo = 0, epoch_hi = 0;  // epochs seen in the delta
    std::uint64_t records = 0;
    bool any = false;
  };

  /// Returns and clears the accumulated delta. A batch folds into exactly
  /// one stripe's pending state, so every batch lands in exactly one
  /// flush interval; consecutive intervals merged back together reproduce
  /// the session's full profile exactly (order recovery makes the cut
  /// points irrelevant).
  FlushDelta take_flush();

  /// Copies of the per-epoch profiles (snapshot serialisation), each in
  /// recovered serial order.
  std::map<std::uint64_t, core::Profile> epoch_profiles() const;

  std::uint64_t ingested_records() const {
    return records_ingested_.load(std::memory_order_relaxed);
  }

  /// Wire-level damage charged to this session (decoder skips, mid-frame
  /// disconnects).
  void count_torn_frames(std::uint64_t n) {
    torn_frames_.fetch_add(n, std::memory_order_relaxed);
  }

  void mark_ended() { ended_.store(true, std::memory_order_relaxed); }
  bool ended() const { return ended_.load(std::memory_order_relaxed); }

 private:
  friend class ProfileServer;

  /// One aggregation stripe: order-recovering accumulators plus the
  /// pending flush delta, under the stripe's own lock.
  struct Stripe {
    mutable support::TracedMutex mu{"service.session.agg"};
    core::SeqProfile event_profiles[hw::kEventKindCount];
    std::map<std::uint64_t, core::SeqProfile> epoch_profiles;
    core::SeqCallGraph graph;
    // Flush accumulation since the last take_flush().
    core::SeqProfile pending_event[hw::kEventKindCount];
    std::uint64_t pending_epoch_lo = ~0ull, pending_epoch_hi = 0;  // lo>hi: none
    std::uint64_t pending_records = 0;
    bool pending_any = false;
  };

  /// Folds `result` into stripe (apply_seq % stripes). Called by workers
  /// under no other lock; any order, any interleaving.
  void apply(std::uint64_t apply_seq, BatchResult result);

  const std::string id_;
  std::atomic<std::uint64_t> trace_id_{0};

  // ---- receiver side (ingest_mu_)
  mutable support::TracedMutex ingest_mu_{"service.session.ingest"};
  core::SampleStreamParser parsers_[hw::kEventKindCount];
  std::map<hw::Pid, std::uint64_t> ceilings_;
  std::uint64_t next_enqueue_seq_ = 0;

  // ---- streamed world (world_mu_)
  mutable std::mutex world_mu_;
  os::Vfs world_;
  std::unique_ptr<core::ArchiveResolver> resolver_;

  // ---- registrations (own lock; consulted from receiver and queries)
  mutable std::mutex reg_mu_;
  core::RegistrationTable table_;

  // ---- ingest queue (self-locked)
  support::BoundedQueue<Batch> queue_;

  // ---- aggregates (per-stripe locks)
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // ---- counters (lock-free)
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> torn_frames_{0};
  std::atomic<std::uint64_t> files_{0};
  std::atomic<std::uint64_t> batches_enqueued_{0};
  std::atomic<std::uint64_t> batches_applied_{0};
  std::atomic<std::uint64_t> batches_dropped_{0};
  std::atomic<std::uint64_t> records_ingested_{0};
  std::atomic<std::uint64_t> records_dropped_{0};
  std::atomic<std::uint64_t> registrations_{0};
  std::atomic<std::uint64_t> registrations_rejected_{0};
  std::atomic<bool> ended_{false};
};

}  // namespace viprof::service
