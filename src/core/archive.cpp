#include "core/archive.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/rvm_map.hpp"
#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::core {

namespace {

constexpr const char* kNoSymbols = "(no symbols)";

std::string manifest_path(const std::string& prefix) { return prefix + "/manifest"; }

const char* kind_code(os::ImageKind kind) {
  switch (kind) {
    case os::ImageKind::kExecutable: return "exec";
    case os::ImageKind::kSharedLib:  return "lib";
    case os::ImageKind::kKernel:     return "kernel";
    case os::ImageKind::kBootImage:  return "boot";
    case os::ImageKind::kAnon:       return "anon";
  }
  return "?";
}

os::ImageKind kind_from(const std::string& code) {
  if (code == "exec") return os::ImageKind::kExecutable;
  if (code == "lib") return os::ImageKind::kSharedLib;
  if (code == "kernel") return os::ImageKind::kKernel;
  if (code == "boot") return os::ImageKind::kBootImage;
  return os::ImageKind::kAnon;
}

}  // namespace

void write_archive(const os::Machine& machine, const RegistrationTable& table,
                   os::Vfs& vfs, const std::string& prefix) {
  std::string out;
  const os::ImageRegistry& registry = machine.registry();
  for (std::uint32_t id = 0; id < registry.count(); ++id) {
    const os::Image& img = registry.get(id);
    out += "image " + std::to_string(id) + " " + kind_code(img.kind()) + " " +
           (img.stripped() ? "1" : "0") + " " + img.name() + "\n";
    for (const os::Symbol& s : img.symbols().ordered()) {
      out += "sym " + std::to_string(id) + " " + support::hex(s.offset) + " " +
             std::to_string(s.size) + " " + s.name + "\n";
    }
  }
  for (const auto& proc : machine.processes()) {
    out += "proc " + std::to_string(proc->pid()) + " " + proc->name() + "\n";
    for (const os::Vma& vma : proc->address_space().vmas()) {
      out += "vma " + std::to_string(proc->pid()) + " " + support::hex(vma.start) +
             " " + support::hex(vma.end) + " " + std::to_string(vma.image) + " " +
             std::to_string(vma.file_offset) + "\n";
    }
  }
  out += "kernel " + std::to_string(machine.kernel().image()) + " " +
         support::hex(machine.kernel().base()) + " " +
         std::to_string(machine.kernel().size()) + "\n";
  if (machine.hypervisor()) {
    out += "hyp " + std::to_string(machine.hypervisor()->image) + " " +
           support::hex(machine.hypervisor()->base) + " " +
           std::to_string(machine.hypervisor()->size) + "\n";
  }
  for (const VmRegistration& reg : table.all()) {
    out += "reg " + std::to_string(reg.pid) + " " + support::hex(reg.heap_lo) + " " +
           support::hex(reg.heap_hi) + " " + support::hex(reg.boot_base) + " " +
           std::to_string(reg.boot_size) + " " +
           (reg.boot_map_path.empty() ? "-" : reg.boot_map_path) + " " +
           (reg.jit_map_dir.empty() ? "-" : reg.jit_map_dir) + " " +
           (reg.obj_map_dir.empty() ? "-" : reg.obj_map_dir) + "\n";
  }
  vfs.write(manifest_path(prefix), std::move(out));
}

ArchiveResolver::ArchiveResolver(const os::Vfs& vfs, const std::string& prefix,
                                 bool vm_aware, bool load_jit_maps)
    : vm_aware_(vm_aware) {
  const auto manifest = vfs.read(manifest_path(prefix));
  VIPROF_CHECK(manifest.has_value());
  std::istringstream in(*manifest);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "image") {
      std::uint32_t id;
      std::string kind;
      int stripped;
      ls >> id >> kind >> stripped;
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name[0] == ' ') name.erase(0, 1);
      if (images_.size() <= id) images_.resize(id + 1);
      images_[id].name = name;
      images_[id].kind = kind_from(kind);
      images_[id].stripped = stripped != 0;
    } else if (tag == "sym") {
      std::uint32_t id;
      std::string offset_hex;
      std::uint64_t size;
      ls >> id >> offset_hex >> size;
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name[0] == ' ') name.erase(0, 1);
      VIPROF_CHECK(id < images_.size());
      images_[id].symbols.add(name, std::stoull(offset_hex, nullptr, 16), size);
    } else if (tag == "proc") {
      hw::Pid pid;
      ls >> pid;
      std::string name;
      std::getline(ls, name);
      if (!name.empty() && name[0] == ' ') name.erase(0, 1);
      processes_[pid].name = name;
    } else if (tag == "vma") {
      hw::Pid pid;
      std::string start_hex, end_hex;
      std::uint32_t image;
      std::uint64_t file_offset;
      ls >> pid >> start_hex >> end_hex >> image >> file_offset;
      processes_[pid].vmas.push_back({std::stoull(start_hex, nullptr, 16),
                                      std::stoull(end_hex, nullptr, 16), image,
                                      file_offset});
    } else if (tag == "kernel" || tag == "hyp") {
      std::uint32_t image;
      std::string base_hex;
      std::uint64_t size;
      ls >> image >> base_hex >> size;
      const Range range{image, std::stoull(base_hex, nullptr, 16), size};
      (tag == "kernel" ? kernel_ : hypervisor_) = range;
    } else if (tag == "reg") {
      VmRegistration reg;
      std::string lo_hex, hi_hex, boot_hex, map_path, jit_dir, obj_dir;
      ls >> reg.pid >> lo_hex >> hi_hex >> boot_hex >> reg.boot_size >> map_path >>
          jit_dir >> obj_dir;  // obj_dir absent in pre-memprof archives
      reg.heap_lo = std::stoull(lo_hex, nullptr, 16);
      reg.heap_hi = std::stoull(hi_hex, nullptr, 16);
      reg.boot_base = std::stoull(boot_hex, nullptr, 16);
      reg.boot_map_path = map_path == "-" ? "" : map_path;
      reg.jit_map_dir = jit_dir == "-" ? "" : jit_dir;
      reg.obj_map_dir = (obj_dir == "-" || obj_dir.empty()) ? "" : obj_dir;
      registrations_.push_back(reg);
    }
  }
  for (auto& [pid, proc] : processes_) {
    std::sort(proc.vmas.begin(), proc.vmas.end(),
              [](const ArchivedVma& a, const ArchivedVma& b) { return a.start < b.start; });
  }
  if (vm_aware_) {
    for (const VmRegistration& reg : registrations_) {
      if (!reg.boot_map_path.empty()) {
        if (const auto contents = vfs.read(reg.boot_map_path)) {
          boot_maps_[reg.pid] = parse_rvm_map(*contents);
          const auto slash = reg.boot_map_path.rfind('/');
          boot_labels_[reg.pid] =
              slash == std::string::npos ? reg.boot_map_path
                                         : reg.boot_map_path.substr(slash + 1);
        }
      }
      if (load_jit_maps && !reg.jit_map_dir.empty()) {
        CodeMapIndex index;
        index.load(vfs, reg.jit_map_dir, reg.pid);
        jit_maps_[reg.pid] = std::move(index);
      }
    }
  }
  loaded_ = true;
}

const ArchiveResolver::ArchivedVma* ArchiveResolver::find_vma(
    const ArchivedProcess& proc, hw::Address pc) const {
  auto it = std::upper_bound(
      proc.vmas.begin(), proc.vmas.end(), pc,
      [](hw::Address a, const ArchivedVma& v) { return a < v.start; });
  if (it == proc.vmas.begin()) return nullptr;
  --it;
  return (pc >= it->start && pc < it->end) ? &*it : nullptr;
}

Resolution ArchiveResolver::resolve(const LoggedSample& s) const {
  return resolve_pc(s.pc, s.mode, s.pid, s.epoch, nullptr);
}

Resolution ArchiveResolver::resolve(const LoggedSample& s,
                                    const JitIndexSource* jit) const {
  return resolve_pc(s.pc, s.mode, s.pid, s.epoch, jit);
}

Resolution ArchiveResolver::resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                                       std::uint64_t epoch) const {
  return resolve_pc(pc, mode, pid, epoch, nullptr);
}

Resolution ArchiveResolver::resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                                       std::uint64_t epoch,
                                       const JitIndexSource* jit) const {
  VIPROF_CHECK(loaded_);
  Resolution out;

  if (hypervisor_ && (mode == hw::CpuMode::kHypervisor || hypervisor_->contains(pc))) {
    out.domain = SampleDomain::kHypervisor;
    const ArchivedImage& img = images_.at(hypervisor_->image);
    out.image = img.name;
    const auto sym = img.symbols.find(pc - hypervisor_->base);
    out.symbol = sym ? sym->name : kNoSymbols;
    if (sym) {
      out.symbol_base = hypervisor_->base + sym->offset;
      out.symbol_size = sym->size;
    }
    return out;
  }
  if (kernel_ && (mode == hw::CpuMode::kKernel || kernel_->contains(pc))) {
    out.domain = SampleDomain::kKernel;
    const ArchivedImage& img = images_.at(kernel_->image);
    out.image = img.name;
    const auto sym = img.symbols.find(pc - kernel_->base);
    out.symbol = sym ? sym->name : kNoSymbols;
    if (sym) {
      out.symbol_base = kernel_->base + sym->offset;
      out.symbol_size = sym->size;
    }
    return out;
  }

  auto proc_it = processes_.find(pid);
  if (proc_it == processes_.end()) {
    out.domain = SampleDomain::kUnknown;
    out.image = "unknown-pid-" + std::to_string(pid);
    out.symbol = kNoSymbols;
    return out;
  }
  const ArchivedVma* vma = find_vma(proc_it->second, pc);
  if (vma == nullptr) {
    out.domain = SampleDomain::kUnknown;
    out.image = "unmapped";
    out.symbol = kNoSymbols;
    return out;
  }

  const ArchivedImage& img = images_.at(vma->image);
  const std::uint64_t offset = vma->file_offset + (pc - vma->start);

  switch (img.kind) {
    case os::ImageKind::kBootImage: {
      if (vm_aware_) {
        auto bm = boot_maps_.find(pid);
        if (bm != boot_maps_.end()) {
          out.domain = SampleDomain::kBoot;
          out.image = boot_labels_.at(pid);
          const auto sym = bm->second.find(offset);
          out.symbol = sym ? sym->name : kNoSymbols;
          if (sym) {
            out.symbol_base = vma->start - vma->file_offset + sym->offset;
            out.symbol_size = sym->size;
          }
          return out;
        }
      }
      out.domain = SampleDomain::kBoot;
      out.image = img.name;  // opaque blob: RVM.code.image / CLR.native.image
      out.symbol = kNoSymbols;
      return out;
    }
    case os::ImageKind::kAnon: {
      if (vm_aware_) {
        for (const VmRegistration& reg : registrations_) {
          if (reg.pid != pid || !reg.heap_contains(pc)) continue;
          out.domain = SampleDomain::kJit;
          out.image = "JIT.App";
          const CodeMapIndex* index = nullptr;
          if (jit != nullptr) {
            index = jit->index_for(pid, epoch);
          } else {
            auto jm = jit_maps_.find(pid);
            if (jm != jit_maps_.end()) index = &jm->second;
          }
          const CodeMapIndex::Lookup lk =
              index != nullptr ? index->lookup(pc, epoch)
                               : CodeMapIndex::Lookup{std::nullopt,
                                                      JitLookupMiss::kNoMaps};
          if (lk.hit) {
            out.symbol = lk.hit->symbol;
            out.maps_searched = lk.hit->maps_searched;
            out.symbol_base = lk.hit->address;
            out.symbol_size = lk.hit->size;
            return out;
          }
          switch (lk.miss) {
            case JitLookupMiss::kMissingEpochMap:
              out.symbol = kUnresolvedMissingMap;
              break;
            case JitLookupMiss::kTruncatedMap:
              out.symbol = kUnresolvedTruncatedMap;
              break;
            default:
              out.symbol = kUnknownJit;
              break;
          }
          return out;
        }
      }
      out.domain = SampleDomain::kAnon;
      out.image = "anon (range:" + support::hex(vma->start) + "-" +
                  support::hex(vma->end) + ")," + proc_it->second.name;
      out.symbol = kNoSymbols;
      return out;
    }
    default: {
      out.domain = SampleDomain::kImage;
      out.image = img.name;
      if (img.stripped) {
        out.symbol = kNoSymbols;
        return out;
      }
      const auto sym = img.symbols.find(offset);
      out.symbol = sym ? sym->name : kNoSymbols;
      if (sym) {
        out.symbol_base = vma->start - vma->file_offset + sym->offset;
        out.symbol_size = sym->size;
      }
      return out;
    }
  }
}

}  // namespace viprof::core
