// On-"disk" sample files: the daemon's output, the post-processor's input.
//
// One file per hardware event, mirroring OProfile's per-event sample files.
// Records carry the epoch assigned at logging time so post-processing can
// select the right code map; everything else (image, symbol) is resolved
// offline — the paper's "delay most of the work to the offline profile
// analysis stage" design.
//
// Crash-consistent framing: every record carries a per-file sequence number
// and an FNV-1a checksum. A reader never trusts a line it cannot verify —
// torn or corrupted regions are skipped and *counted* (salvage), sequence
// gaps reveal records that were dropped or lost in a crash, and duplicate
// sequence numbers (a re-tried batch that half-landed) are discarded. The
// writer keeps failed batches in a bounded in-memory spill buffer so a
// transient write error loses nothing; overflow drops are counted too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hw/event.hpp"
#include "hw/types.hpp"
#include "os/vfs.hpp"

namespace viprof::core {

struct LoggedSample {
  hw::Address pc = 0;
  hw::Address caller_pc = 0;
  hw::CpuMode mode = hw::CpuMode::kUser;
  hw::Pid pid = 0;
  std::uint64_t epoch = 0;
  std::uint64_t cycle = 0;
};

/// Outcome of one flush() call over all per-event files.
struct LogFlushResult {
  std::uint64_t write_errors = 0;     // appends rejected (batch retained)
  std::uint64_t torn_writes = 0;      // appends that landed torn
  std::uint64_t records_dropped = 0;  // spill-buffer overflow drops
  std::uint64_t bytes_dropped = 0;
  bool fully_flushed = true;          // false while a batch is spilled
};

class SampleLogWriter {
 public:
  SampleLogWriter(os::Vfs& vfs, std::string dir) : vfs_(&vfs), dir_(std::move(dir)) {}

  void append(hw::EventKind event, const LoggedSample& sample);

  /// Writes buffered lines out to the VFS (daemon does this per drain).
  /// Batches whose append fails are retained in the spill buffer, bounded
  /// by `spill_capacity_bytes`; the oldest records are dropped (and
  /// counted) on overflow. Safe to call again to retry a spilled batch.
  LogFlushResult flush();

  /// Crash: the in-memory spill/pending buffer is lost. Returns the number
  /// of records discarded; their sequence numbers stay consumed, so readers
  /// see the loss as a sequence gap.
  std::uint64_t discard_pending();

  /// Bytes currently buffered (pending + spilled) across all events.
  std::size_t pending_bytes() const;

  /// Spill-buffer bound; flush() drops the oldest records beyond it.
  void set_spill_capacity(std::size_t bytes) { spill_capacity_ = bytes; }

  std::uint64_t written(hw::EventKind event) const {
    return written_[hw::event_index(event)];
  }

  /// Records dropped from the spill buffer so far (all events).
  std::uint64_t spill_dropped() const { return spill_dropped_; }

  static std::string path_for(const std::string& dir, hw::EventKind event);

 private:
  os::Vfs* vfs_;
  std::string dir_;
  std::string pending_[hw::kEventKindCount];
  std::uint64_t pending_records_[hw::kEventKindCount] = {};
  std::uint64_t next_seq_[hw::kEventKindCount] = {};
  std::uint64_t written_[hw::kEventKindCount] = {};
  std::uint64_t spill_dropped_ = 0;
  std::size_t spill_capacity_ = 256 * 1024;
};

/// What the reader found in one sample file. `missing`, "empty" (valid == 0
/// with neither missing nor corrupt) and `corrupt` are distinct outcomes.
struct SampleLogReadStatus {
  bool missing = false;   // file does not exist
  bool corrupt = false;   // framing damage found (torn/overwritten bytes)
  std::uint64_t valid = 0;              // records returned to the caller
  std::uint64_t salvaged = 0;           // valid records from a damaged file
  std::uint64_t discarded_lines = 0;    // unparseable / checksum-mismatch lines
  std::uint64_t discarded_bytes = 0;
  std::uint64_t duplicate_records = 0;  // sequence numbers seen twice
  std::uint64_t missing_records = 0;    // inferred from sequence gaps
  std::uint64_t max_seq = 0;            // highest verified sequence number

  bool empty() const { return !missing && !corrupt && valid == 0; }
  bool clean() const { return !missing && !corrupt; }
};

/// Incremental parser over the sample-log line format, sharing
/// read_checked()'s exact verification and sequence accounting. Feed it
/// chunks of log text — the whole file (read_checked does) or one streamed
/// wire batch at a time (the profile service does) — and it accumulates
/// verified samples plus a running SampleLogReadStatus across calls, so a
/// stream parsed batch-by-batch reports byte-identical salvage/gap/dup
/// counts to the same bytes read as one file.
///
/// Each chunk should end on a line boundary; a trailing unterminated line
/// is treated as damage (counted, discarded), exactly as at end-of-file.
class SampleStreamParser {
 public:
  /// Parses every line in `text`, appending verified samples to `out`.
  void parse(std::string_view text, std::vector<LoggedSample>& out) {
    parse_into(text, out);
  }

  /// Container-generic variant — `Sink` needs push_back(LoggedSample).
  /// The service decodes batches into arena-backed vectors through this;
  /// verification, salvage and sequence accounting are the exact same code
  /// path as the file reader. Explicitly instantiated in sample_log.cpp
  /// for std::vector<LoggedSample> and support::ArenaVector<LoggedSample>.
  template <typename Sink>
  void parse_into(std::string_view text, Sink& out);

  /// Accumulated status. `salvaged` is maintained (= valid when damage was
  /// seen); `missing` stays false — only file readers can observe it.
  const SampleLogReadStatus& status() const { return status_; }

  /// Next sequence number the stream should carry (dedup watermark).
  std::uint64_t next_expected() const { return next_expected_; }

 private:
  SampleLogReadStatus status_;
  std::uint64_t next_expected_ = 0;
};

class SampleLogReader {
 public:
  /// All verifiable samples of `event` under `dir`; empty if the file does
  /// not exist. Convenience wrapper over read_checked.
  static std::vector<LoggedSample> read(const os::Vfs& vfs, const std::string& dir,
                                        hw::EventKind event);

  /// Salvaging read: verifies framing record by record, skips (and counts)
  /// damage, and reports exactly what was recovered, lost and discarded.
  static std::vector<LoggedSample> read_checked(const os::Vfs& vfs,
                                                const std::string& dir,
                                                hw::EventKind event,
                                                SampleLogReadStatus& status);
};

}  // namespace viprof::core
