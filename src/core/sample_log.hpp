// On-"disk" sample files: the daemon's output, the post-processor's input.
//
// One file per hardware event, mirroring OProfile's per-event sample files.
// Records carry the epoch assigned at logging time so post-processing can
// select the right code map; everything else (image, symbol) is resolved
// offline — the paper's "delay most of the work to the offline profile
// analysis stage" design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/event.hpp"
#include "hw/types.hpp"
#include "os/vfs.hpp"

namespace viprof::core {

struct LoggedSample {
  hw::Address pc = 0;
  hw::Address caller_pc = 0;
  hw::CpuMode mode = hw::CpuMode::kUser;
  hw::Pid pid = 0;
  std::uint64_t epoch = 0;
  std::uint64_t cycle = 0;
};

class SampleLogWriter {
 public:
  SampleLogWriter(os::Vfs& vfs, std::string dir) : vfs_(&vfs), dir_(std::move(dir)) {}

  void append(hw::EventKind event, const LoggedSample& sample);

  /// Writes buffered lines out to the VFS (daemon does this per drain).
  void flush();

  std::uint64_t written(hw::EventKind event) const {
    return written_[hw::event_index(event)];
  }

  static std::string path_for(const std::string& dir, hw::EventKind event);

 private:
  os::Vfs* vfs_;
  std::string dir_;
  std::string pending_[hw::kEventKindCount];
  std::uint64_t written_[hw::kEventKindCount] = {};
};

class SampleLogReader {
 public:
  /// All samples of `event` under `dir`; empty if the file does not exist.
  static std::vector<LoggedSample> read(const os::Vfs& vfs, const std::string& dir,
                                        hw::EventKind event);
};

}  // namespace viprof::core
