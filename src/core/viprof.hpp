// Umbrella header: the VIProf public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   os::Machine machine;
//   jvm::Vm vm(machine, vm_config);
//   core::SessionConfig cfg;                 // mode, events, periods
//   core::ProfilingSession session(machine, vm, cfg);
//   session.attach();                        // before vm.setup()
//   vm.setup(program);
//   core::SessionResult result = session.run();
//   std::cout << session.report_text({kGlobalPowerEvents, kBsqCacheReference}, 20);
#pragma once

#include "core/agent.hpp"
#include "core/callgraph.hpp"
#include "core/code_map.hpp"
#include "core/daemon.hpp"
#include "core/registration.hpp"
#include "core/report.hpp"
#include "core/resolver.hpp"
#include "core/sample.hpp"
#include "core/sample_buffer.hpp"
#include "core/sample_log.hpp"
#include "core/session.hpp"
