// Order-recovering accumulators for striped aggregation (DESIGN.md §14).
//
// Profile::merge reproduces the serial row order only when partials are
// merged in contiguous shard order — a row's first-occurrence shard must
// be visited first. Striped ingest breaks that precondition on purpose:
// batches land on stripes by sequence number and apply in whatever order
// workers finish, so no stripe holds a contiguous run. SeqProfile and
// SeqCallGraph make the apply order irrelevant instead: every row/arc
// remembers the (batch sequence, within-batch insertion index) of its
// first occurrence, minimised across folds, and ordered() rebuilds the
// exact serial first-occurrence insertion order by sorting on that pair.
// Any batch→stripe assignment, any stripe count and any apply interleaving
// therefore render byte-identically to the serial aggregate — the
// online/offline identity anchor survives without a reorder buffer.
//
// RowMemo is the batched-interning half of the same hot path: within one
// batch (or resolve shard), repeated symbols are bumped through a cached
// row index keyed on the resolution's stable identity, skipping
// Profile::add's per-sample key-string build; the shared table is touched
// once per distinct row per batch, not once per sample.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/callgraph.hpp"
#include "core/report.hpp"
#include "core/resolver.hpp"
#include "core/sample_log.hpp"
#include "hw/event.hpp"

namespace viprof::core {

/// A Profile accumulator whose rows carry first-occurrence (seq, idx)
/// provenance. fold(seq, partial) folds one batch partial produced under
/// sequence number `seq`; fold(other) combines two accumulators (cross-
/// stripe merge at query time). ordered() renders back to a Profile in
/// recovered serial order.
class SeqProfile {
 public:
  void fold(std::uint64_t seq, const Profile& partial);
  void fold(const SeqProfile& other);

  /// The serial-order Profile: rows sorted by (seq, idx) and re-added, so
  /// row order, totals and domains match the sequential aggregate byte for
  /// byte.
  Profile ordered() const;

  bool empty() const { return rows_.empty(); }
  std::size_t row_count() const { return rows_.size(); }

 private:
  struct SeqRow {
    ProfileRow row;
    std::uint64_t seq = 0;  // batch sequence of the first occurrence
    std::uint32_t idx = 0;  // insertion index within that batch
  };

  void fold_row(const ProfileRow& src, std::uint64_t seq, std::uint32_t idx);

  std::vector<SeqRow> rows_;
  /// "image\0symbol" -> index into rows_ (same key scheme as Profile).
  std::unordered_map<std::string, std::size_t> index_;
};

/// CallGraph counterpart: arcs carry (seq, idx) provenance; ordered()
/// rebuilds serial arc insertion order (and total_samples) exactly.
class SeqCallGraph {
 public:
  void fold(std::uint64_t seq, const CallGraph& partial);
  void fold(const SeqCallGraph& other);

  CallGraph ordered() const;

  bool empty() const { return arcs_.empty(); }

 private:
  struct SeqArc {
    CallArc arc;
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;
  };

  void fold_arc(const CallArc& src, std::uint64_t seq, std::uint32_t idx);

  std::vector<SeqArc> arcs_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Per-batch (or per-shard) memo from a resolution's stable identity —
/// (domain, pid, sample epoch, symbol_base) — to its interned row index in
/// one target Profile. Only resolutions with symbol_size != 0 are
/// memoised: the unresolved degradation bins all report base 0, so they
/// always take the exact add() path. A memo is valid for exactly one
/// Profile and one batch; start a fresh one per batch.
class RowMemo {
 public:
  void add(Profile& out, hw::EventKind event, hw::Pid pid, std::uint64_t epoch,
           const Resolution& res, std::uint64_t count = 1) {
    if (res.symbol_size == 0) {
      out.add(event, res, count);
      return;
    }
    const Key key{res.symbol_base, epoch, pid, static_cast<std::uint8_t>(res.domain)};
    const auto [it, inserted] = map_.try_emplace(key, 0);
    if (inserted) it->second = out.row_index(res);
    out.bump(it->second, event, count);
  }

  void clear() { map_.clear(); }

 private:
  struct Key {
    hw::Address base = 0;
    std::uint64_t epoch = 0;
    hw::Pid pid = 0;
    std::uint8_t domain = 0;

    bool operator==(const Key& o) const {
      return base == o.base && epoch == o.epoch && pid == o.pid && domain == o.domain;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.base * 0x9e3779b97f4a7c15ull;
      h ^= (k.epoch + 0x7f4a7c15u) * 0xc2b2ae3d27d4eb4full;
      h ^= (static_cast<std::uint64_t>(k.pid) << 8 | k.domain) * 0x165667b19e3779f9ull;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };

  std::unordered_map<Key, std::size_t, KeyHash> map_;
};

}  // namespace viprof::core
