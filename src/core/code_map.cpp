#include "core/code_map.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::core {

std::string CodeMapFile::serialize() const {
  std::string out = "epoch " + std::to_string(epoch) + "\n";
  for (const CodeMapEntry& e : entries) {
    out += support::hex(e.address);
    out += ' ';
    out += std::to_string(e.size);
    out += ' ';
    out += e.symbol;
    out += '\n';
  }
  return out;
}

std::optional<CodeMapFile> CodeMapFile::parse(const std::string& contents) {
  std::istringstream in(contents);
  std::string word;
  CodeMapFile file;
  if (!(in >> word) || word != "epoch") return std::nullopt;
  if (!(in >> file.epoch)) return std::nullopt;
  std::string line;
  std::getline(in, line);  // consume rest of header line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    CodeMapEntry e;
    unsigned long long addr = 0;
    unsigned long long size = 0;
    char symbol[512];
    if (std::sscanf(line.c_str(), "%llx %llu %511s", &addr, &size, symbol) != 3) {
      return std::nullopt;
    }
    e.address = addr;
    e.size = size;
    e.symbol = symbol;
    file.entries.push_back(std::move(e));
  }
  return file;
}

std::string CodeMapFile::path_for(const std::string& dir, hw::Pid pid,
                                  std::uint64_t epoch) {
  char buf[64];
  // Zero-padded epoch keeps VFS listing in epoch order.
  std::snprintf(buf, sizeof buf, "/%u/map.%08llu", pid,
                static_cast<unsigned long long>(epoch));
  return dir + buf;
}

void CodeMapIndex::load(const os::Vfs& vfs, const std::string& dir, hw::Pid pid) {
  const std::string prefix = dir + "/" + std::to_string(pid) + "/map.";
  for (const std::string& path : vfs.list(prefix)) {
    const auto contents = vfs.read(path);
    VIPROF_CHECK(contents.has_value());
    auto file = CodeMapFile::parse(*contents);
    VIPROF_CHECK(file.has_value());
    add(std::move(*file));
  }
}

void CodeMapIndex::add(CodeMapFile file) {
  auto& entries = maps_[file.epoch];
  VIPROF_CHECK(entries.empty());  // one map per epoch
  entries = std::move(file.entries);
  std::sort(entries.begin(), entries.end(),
            [](const CodeMapEntry& a, const CodeMapEntry& b) {
              return a.address < b.address;
            });
  total_entries_ += entries.size();
}

std::optional<CodeMapIndex::Hit> CodeMapIndex::resolve(hw::Address pc,
                                                       std::uint64_t epoch) const {
  std::uint32_t searched = 0;
  // Iterate epochs <= `epoch` from newest to oldest.
  auto it = maps_.upper_bound(epoch);
  while (it != maps_.begin()) {
    --it;
    ++searched;
    const auto& entries = it->second;
    auto e = std::upper_bound(entries.begin(), entries.end(), pc,
                              [](hw::Address a, const CodeMapEntry& m) {
                                return a < m.address;
                              });
    if (e != entries.begin()) {
      --e;
      if (e->contains(pc)) {
        return Hit{e->symbol, it->first, searched, e->address, e->size};
      }
    }
  }
  return std::nullopt;
}

std::uint64_t CodeMapIndex::max_epoch() const {
  if (maps_.empty()) return 0;
  return maps_.rbegin()->first;
}

}  // namespace viprof::core
