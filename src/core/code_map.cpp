#include "core/code_map.hpp"

#include <algorithm>
#include <cstdio>

#include "support/check.hpp"
#include "support/format.hpp"
#include "support/str_scan.hpp"

namespace viprof::core {

namespace {

// Parses one "addr size symbol" entry line; false on any malformation
// (including a symbol longer than the 511-char on-disk limit, or trailing
// junk after the symbol).
bool parse_entry_line(std::string_view line, CodeMapEntry& entry) {
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
  std::string_view symbol;
  if (!support::scan_hex64(line, addr) || !support::scan_u64(line, size) ||
      !support::scan_token(line, symbol) || symbol.size() > 511 ||
      !support::at_end(line)) {
    return false;
  }
  entry.address = addr;
  entry.size = size;
  entry.symbol = std::string(symbol);
  return true;
}

// Header "epoch N entries M" with nothing after M.
bool parse_header_line(std::string_view line, std::uint64_t& epoch,
                       std::uint64_t& expected) {
  if (!support::scan_lit(line, "epoch") || !support::scan_u64(line, epoch)) {
    return false;
  }
  support::skip_ws(line);
  return support::scan_lit(line, "entries") && support::scan_u64(line, expected) &&
         support::at_end(line);
}

// Trailer "crc XXXXXXXX" (at most 8 hex digits) with nothing after.
bool parse_crc_line(std::string_view line, std::uint32_t& crc) {
  std::uint64_t value = 0;
  if (!support::scan_lit(line, "crc") ||
      !support::scan_hex64(line, value, /*max_digits=*/8) ||
      !support::at_end(line)) {
    return false;
  }
  crc = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

std::string CodeMapFile::serialize() const {
  std::string out = "epoch " + std::to_string(epoch) + " entries " +
                    std::to_string(entries.size()) + "\n";
  if (truncated) out += "truncated\n";
  for (const CodeMapEntry& e : entries) {
    out += support::hex(e.address);
    out += ' ';
    out += std::to_string(e.size);
    out += ' ';
    out += e.symbol;
    out += '\n';
  }
  char trailer[32];
  std::snprintf(trailer, sizeof trailer, "crc %08x\n", support::fnv1a(out));
  out += trailer;
  return out;
}

std::optional<CodeMapFile> CodeMapFile::parse(const std::string& contents) {
  const Recovery r = salvage(contents, 0);
  if (!r.intact && !(r.header_ok && r.file.truncated &&
                     r.file.entries.size() == r.entries_expected)) {
    // Strict parse accepts only fully verified files; a `truncated` marker
    // written by fsck is fine as long as the file itself checks out.
    return std::nullopt;
  }
  return r.file;
}

CodeMapFile::Recovery CodeMapFile::salvage(const std::string& contents,
                                           std::uint64_t epoch_hint) {
  Recovery r;
  r.file.epoch = epoch_hint;
  r.file.truncated = true;  // until proven intact

  support::LineCursor cursor(contents);
  std::string_view line;

  // Header: "epoch N entries M". A header that is the *whole* file (no
  // trailing newline) is still readable — the epoch is trustworthy even
  // though the file as a whole cannot be.
  const bool header_unterminated = !cursor.next(line);
  if (header_unterminated) {
    if (cursor.tail().empty()) return r;  // empty file
    line = cursor.tail();
  }
  {
    std::uint64_t epoch = 0, expected = 0;
    if (!parse_header_line(line, epoch, expected)) {
      return r;  // header unreadable: epoch_hint stands, nothing salvageable
    }
    r.header_ok = true;
    r.file.epoch = epoch;
    r.entries_expected = expected;
  }
  if (header_unterminated) return r;

  bool marked_truncated = false;
  bool saw_crc = false;
  std::uint32_t crc_read = 0;
  std::size_t crc_covers = 0;  // bytes of `contents` the trailer checksums

  std::size_t consumed = line.size() + 1;
  bool damaged = false;
  while (cursor.next(line)) {
    if (line == "truncated") {
      marked_truncated = true;
      consumed += line.size() + 1;
      continue;
    }
    if (parse_crc_line(line, crc_read)) {
      saw_crc = true;
      crc_covers = consumed;
      consumed += line.size() + 1;
      break;  // trailer is the last line; anything after it is damage
    }
    CodeMapEntry e;
    if (!parse_entry_line(line, e)) {
      damaged = true;
      break;  // stop at the first bad entry: everything after is suspect
    }
    r.file.entries.push_back(std::move(e));
    consumed += line.size() + 1;
  }
  if (!damaged && !saw_crc && !cursor.tail().empty()) {
    // Unterminated final line: a tear mid-line can leave a prefix that
    // still parses — e.g. a chopped symbol name — so nothing short of a
    // newline-terminated line is trusted.
    damaged = true;
  }

  const bool crc_ok =
      saw_crc && crc_covers <= contents.size() &&
      support::fnv1a(contents.data(), crc_covers) == crc_read;
  r.intact = !damaged && crc_ok && r.file.entries.size() == r.entries_expected &&
             consumed >= contents.size();
  r.file.truncated = marked_truncated || !r.intact;
  return r;
}

std::string CodeMapFile::path_for(const std::string& dir, hw::Pid pid,
                                  std::uint64_t epoch) {
  char buf[64];
  // Zero-padded epoch keeps VFS listing in epoch order.
  std::snprintf(buf, sizeof buf, "/%u/map.%08llu", pid,
                static_cast<unsigned long long>(epoch));
  return dir + buf;
}

std::optional<std::uint64_t> CodeMapFile::epoch_from_path(const std::string& path) {
  const auto dot = path.rfind("map.");
  if (dot == std::string::npos) return std::nullopt;
  const std::string digits = path.substr(dot + 4);
  if (digits.empty()) return std::nullopt;
  unsigned long long epoch = 0;
  char extra = 0;
  if (std::sscanf(digits.c_str(), "%llu%c", &epoch, &extra) != 1) return std::nullopt;
  return epoch;
}

CodeMapIndex::CodeMapIndex(CodeMapIndex&& other) noexcept {
  *this = std::move(other);
}

CodeMapIndex& CodeMapIndex::operator=(CodeMapIndex&& other) noexcept {
  if (this != &other) {
    // Moves require exclusive access to both sides (no concurrent queries),
    // like any other mutation; no locking needed.
    maps_ = std::move(other.maps_);
    total_entries_ = other.total_entries_;
    truncated_count_ = other.truncated_count_;
    bounds_ = std::move(other.bounds_);
    slot_of_ = std::move(other.slot_of_);
    versions_ = std::move(other.versions_);
    epochs_ = std::move(other.epochs_);
    trunc_epochs_ = std::move(other.trunc_epochs_);
    gap_below_ = std::move(other.gap_below_);
    flat_ready_.store(other.flat_ready_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    other.flat_ready_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

CodeMapIndex::LoadStats CodeMapIndex::load(const os::Vfs& vfs, const std::string& dir,
                                           hw::Pid pid) {
  LoadStats stats;
  const std::string prefix = dir + "/" + std::to_string(pid) + "/map.";
  for (const std::string& path : vfs.list(prefix)) {
    const auto contents = vfs.read(path);
    VIPROF_CHECK(contents.has_value());
    // The file name carries the epoch, so even a fully corrupt file still
    // registers its epoch as truncated — the resolver must know the epoch
    // existed and is unaccounted for.
    const auto hint = CodeMapFile::epoch_from_path(path);
    const CodeMapFile::Recovery r =
        CodeMapFile::salvage(*contents, hint.value_or(0));
    ++stats.maps_loaded;
    if (r.file.truncated) {
      ++stats.maps_truncated;
      stats.entries_salvaged += r.file.entries.size();
    } else {
      ++stats.maps_intact;
    }
    stats.entries_loaded += r.file.entries.size();
    add(r.file);
  }
  prepare();
  return stats;
}

void CodeMapIndex::add(CodeMapFile file) {
  flat_ready_.store(false, std::memory_order_release);
  auto it = maps_.find(file.epoch);
  if (it == maps_.end()) {
    EpochMap map;
    map.entries = std::move(file.entries);
    map.truncated = file.truncated;
    std::sort(map.entries.begin(), map.entries.end(),
              [](const CodeMapEntry& a, const CodeMapEntry& b) {
                return a.address < b.address;
              });
    total_entries_ += map.entries.size();
    if (map.truncated) ++truncated_count_;
    maps_.emplace(file.epoch, std::move(map));
    return;
  }
  // Epoch collision: two files claimed this epoch (typically two damaged
  // files salvaged under the same file-name hint). Merge the entries and
  // mark the epoch truncated — which file's entries are authoritative is
  // unknowable, so absence from the union must not prove anything.
  EpochMap& map = it->second;
  total_entries_ += file.entries.size();
  map.entries.insert(map.entries.end(),
                     std::make_move_iterator(file.entries.begin()),
                     std::make_move_iterator(file.entries.end()));
  std::sort(map.entries.begin(), map.entries.end(),
            [](const CodeMapEntry& a, const CodeMapEntry& b) {
              return a.address < b.address;
            });
  if (!map.truncated) ++truncated_count_;
  map.truncated = true;
}

const CodeMapEntry* CodeMapIndex::find_in(const EpochMap& map, hw::Address pc) const {
  auto e = std::upper_bound(map.entries.begin(), map.entries.end(), pc,
                            [](hw::Address a, const CodeMapEntry& m) {
                              return a < m.address;
                            });
  if (e == map.entries.begin()) return nullptr;
  --e;
  return e->contains(pc) ? &*e : nullptr;
}

void CodeMapIndex::prepare() const {
  if (flat_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(flat_mu_);
  if (flat_ready_.load(std::memory_order_relaxed)) return;
  build_flat();
  flat_ready_.store(true, std::memory_order_release);
}

void CodeMapIndex::build_flat() const {
  bounds_.clear();
  slot_of_.clear();
  versions_.clear();
  epochs_.clear();
  trunc_epochs_.clear();
  gap_below_.clear();

  epochs_.reserve(maps_.size());
  for (const auto& [epoch, map] : maps_) {
    epochs_.push_back(epoch);
    if (map.truncated) trunc_epochs_.push_back(epoch);
  }

  gap_below_.reserve(epochs_.size());
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    if (i == 0) {
      gap_below_.push_back(epochs_[0] > 0 ? epochs_[0] - 1 : kNoGap);
    } else if (epochs_[i - 1] + 1 == epochs_[i]) {
      gap_below_.push_back(gap_below_[i - 1]);  // contiguous: inherit
    } else {
      gap_below_.push_back(epochs_[i] - 1);
    }
  }

  // The effective coverage of one epoch map mirrors find_in() exactly: the
  // segment of sorted entry i is [addr_i, min(addr_i + size_i, addr_{i+1}))
  // — a predecessor probe never sees past the next entry's start, so an
  // overlapped prefix stays a hole (exposing older epochs), duplicates
  // yield empty segments, and address+size overflow means no coverage.
  const auto each_segment = [](const EpochMap& map, const auto& fn) {
    const auto& es = map.entries;
    for (std::size_t i = 0; i < es.size(); ++i) {
      const hw::Address lo = es[i].address;
      hw::Address hi = lo + es[i].size;
      if (hi <= lo) continue;  // zero size, or wrapped: contains() never true
      if (i + 1 < es.size() && es[i + 1].address < hi) hi = es[i + 1].address;
      if (hi <= lo) continue;
      fn(lo, hi, &es[i]);
    }
  };

  for (const auto& [epoch, map] : maps_) {
    each_segment(map, [this](hw::Address lo, hw::Address hi, const CodeMapEntry*) {
      bounds_.push_back(lo);
      bounds_.push_back(hi);
    });
  }
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());

  const std::size_t slots = bounds_.empty() ? 0 : bounds_.size() - 1;
  std::vector<std::vector<Version>> per_slot(slots);
  std::uint32_t ord = 0;
  for (const auto& [epoch, map] : maps_) {
    const std::uint64_t e = epoch;
    each_segment(map, [&](hw::Address lo, hw::Address hi, const CodeMapEntry* entry) {
      const std::size_t j0 = static_cast<std::size_t>(
          std::lower_bound(bounds_.begin(), bounds_.end(), lo) - bounds_.begin());
      const std::size_t j1 = static_cast<std::size_t>(
          std::lower_bound(bounds_.begin(), bounds_.end(), hi) - bounds_.begin());
      for (std::size_t j = j0; j < j1; ++j) {
        per_slot[j].push_back(Version{e, ord, entry});
      }
    });
    ++ord;
  }

  slot_of_.reserve(slots + 1);
  slot_of_.push_back(0);
  std::size_t total = 0;
  for (const auto& vs : per_slot) total += vs.size();
  versions_.reserve(total);
  for (auto& vs : per_slot) {
    versions_.insert(versions_.end(), vs.begin(), vs.end());
    slot_of_.push_back(versions_.size());
  }
}

const CodeMapIndex::Version* CodeMapIndex::flat_find(hw::Address pc,
                                                     std::uint64_t epoch) const {
  if (bounds_.size() < 2 || pc < bounds_.front() || pc >= bounds_.back()) {
    return nullptr;
  }
  const std::size_t j = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), pc) - bounds_.begin() - 1);
  const auto begin = versions_.begin() + static_cast<std::ptrdiff_t>(slot_of_[j]);
  const auto end = versions_.begin() + static_cast<std::ptrdiff_t>(slot_of_[j + 1]);
  const auto it = std::upper_bound(
      begin, end, epoch,
      [](std::uint64_t q, const Version& v) { return q < v.epoch; });
  if (it == begin) return nullptr;  // interval unoccupied at or before `epoch`
  return &*(it - 1);
}

std::optional<CodeMapIndex::Hit> CodeMapIndex::resolve(hw::Address pc,
                                                       std::uint64_t epoch) const {
  prepare();
  const Version* v = flat_find(pc, epoch);
  if (v == nullptr) return std::nullopt;
  // The lax walk visits every loaded map from the newest at or below
  // `epoch` down to the hit, so the reported depth is an ord distance.
  const auto top = std::upper_bound(epochs_.begin(), epochs_.end(), epoch);
  const auto top_ord = static_cast<std::uint32_t>(top - epochs_.begin() - 1);
  return Hit{v->entry->symbol, v->epoch, top_ord - v->ord + 1, v->entry->address,
             v->entry->size};
}

CodeMapIndex::Lookup CodeMapIndex::lookup(hw::Address pc, std::uint64_t epoch) const {
  Lookup out;
  if (maps_.empty()) {
    out.miss = JitLookupMiss::kNoMaps;
    return out;
  }
  prepare();

  // Newest loaded epoch at or below the query epoch, if any.
  const auto top = std::upper_bound(epochs_.begin(), epochs_.end(), epoch);
  // Newest *missing* integer epoch <= query: the query epoch itself when it
  // has no map, else the precomputed gap below the walk's entry point.
  std::uint64_t gap = kNoGap;
  if (top == epochs_.begin()) {
    gap = epoch;  // nothing loaded at or below the query epoch
  } else {
    const std::size_t top_idx = static_cast<std::size_t>(top - epochs_.begin() - 1);
    gap = epochs_[top_idx] == epoch ? gap_below_[top_idx] : epoch;
  }
  // Newest truncated epoch <= query.
  const auto tt = std::upper_bound(trunc_epochs_.begin(), trunc_epochs_.end(), epoch);
  const bool has_trunc = tt != trunc_epochs_.begin();
  const std::uint64_t trunc = has_trunc ? *(tt - 1) : 0;

  const Version* v = flat_find(pc, epoch);
  // The walk stops at whichever poison epoch it meets first (the highest
  // one) on the way down from `epoch` — but only if that is *above* the
  // hit; a hit inside a truncated map is still a hit (verified checksum).
  const std::uint64_t floor = v != nullptr ? v->epoch : 0;
  const bool gap_aborts = gap != kNoGap && (v == nullptr || gap > floor);
  const bool trunc_aborts = has_trunc && (v == nullptr || trunc > floor);
  if (!gap_aborts && !trunc_aborts) {
    if (v != nullptr) {
      // All integer epochs in [hit, query] have maps (no gap above the
      // hit), so the walk depth is the plain epoch distance.
      out.hit = Hit{v->entry->symbol, v->epoch,
                    static_cast<std::uint32_t>(epoch - v->epoch + 1),
                    v->entry->address, v->entry->size};
    } else {
      out.miss = JitLookupMiss::kNotFound;  // reached epoch 0 intact
    }
    return out;
  }
  out.miss = (gap_aborts && (!trunc_aborts || gap > trunc))
                 ? JitLookupMiss::kMissingEpochMap
                 : JitLookupMiss::kTruncatedMap;
  return out;
}

std::optional<CodeMapIndex::Hit> CodeMapIndex::resolve_walkback(
    hw::Address pc, std::uint64_t epoch) const {
  std::uint32_t searched = 0;
  // Iterate epochs <= `epoch` from newest to oldest.
  auto it = maps_.upper_bound(epoch);
  while (it != maps_.begin()) {
    --it;
    ++searched;
    if (const CodeMapEntry* e = find_in(it->second, pc)) {
      return Hit{e->symbol, it->first, searched, e->address, e->size};
    }
  }
  return std::nullopt;
}

CodeMapIndex::Lookup CodeMapIndex::lookup_walkback(hw::Address pc,
                                                   std::uint64_t epoch) const {
  Lookup out;
  if (maps_.empty()) {
    out.miss = JitLookupMiss::kNoMaps;
    return out;
  }
  std::uint32_t searched = 0;
  for (std::uint64_t e = epoch;; --e) {
    auto it = maps_.find(e);
    if (it == maps_.end()) {
      // This epoch's map was lost. Some method may have been compiled or
      // moved here; falling through to an older map could resurrect a
      // stale placement, so the sample is explicitly unresolvable.
      out.miss = JitLookupMiss::kMissingEpochMap;
      return out;
    }
    ++searched;
    if (const CodeMapEntry* entry = find_in(it->second, pc)) {
      // A salvaged entry carries a verified checksum, so a hit is a hit
      // even inside a truncated map.
      out.hit = Hit{entry->symbol, e, searched, entry->address, entry->size};
      return out;
    }
    if (it->second.truncated) {
      // Absence from a truncated map proves nothing — the entry covering
      // `pc` may be among the lost lines.
      out.miss = JitLookupMiss::kTruncatedMap;
      return out;
    }
    if (e == 0) break;
  }
  out.miss = JitLookupMiss::kNotFound;
  return out;
}

std::uint64_t CodeMapIndex::max_epoch() const {
  if (maps_.empty()) return 0;
  return maps_.rbegin()->first;
}

}  // namespace viprof::core
