#include "core/code_map.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::core {

namespace {

// Parses one "addr size symbol" entry line; false on any malformation.
bool parse_entry_line(const std::string& line, CodeMapEntry& entry) {
  unsigned long long addr = 0;
  unsigned long long size = 0;
  char symbol[512];
  char extra = 0;
  if (std::sscanf(line.c_str(), "%llx %llu %511s %c", &addr, &size, symbol,
                  &extra) != 3) {
    return false;
  }
  entry.address = addr;
  entry.size = size;
  entry.symbol = symbol;
  return true;
}

}  // namespace

std::string CodeMapFile::serialize() const {
  std::string out = "epoch " + std::to_string(epoch) + " entries " +
                    std::to_string(entries.size()) + "\n";
  if (truncated) out += "truncated\n";
  for (const CodeMapEntry& e : entries) {
    out += support::hex(e.address);
    out += ' ';
    out += std::to_string(e.size);
    out += ' ';
    out += e.symbol;
    out += '\n';
  }
  char trailer[32];
  std::snprintf(trailer, sizeof trailer, "crc %08x\n", support::fnv1a(out));
  out += trailer;
  return out;
}

std::optional<CodeMapFile> CodeMapFile::parse(const std::string& contents) {
  const Recovery r = salvage(contents, 0);
  if (!r.intact && !(r.header_ok && r.file.truncated &&
                     r.file.entries.size() == r.entries_expected)) {
    // Strict parse accepts only fully verified files; a `truncated` marker
    // written by fsck is fine as long as the file itself checks out.
    return std::nullopt;
  }
  return r.file;
}

CodeMapFile::Recovery CodeMapFile::salvage(const std::string& contents,
                                           std::uint64_t epoch_hint) {
  Recovery r;
  r.file.epoch = epoch_hint;
  r.file.truncated = true;  // until proven intact

  std::istringstream in(contents);
  std::string line;

  // Header: "epoch N entries M".
  if (!std::getline(in, line)) return r;
  {
    unsigned long long epoch = 0, expected = 0;
    char extra = 0;
    if (std::sscanf(line.c_str(), "epoch %llu entries %llu %c", &epoch, &expected,
                    &extra) != 2) {
      return r;  // header unreadable: epoch_hint stands, nothing salvageable
    }
    r.header_ok = true;
    r.file.epoch = epoch;
    r.entries_expected = expected;
  }

  bool marked_truncated = false;
  bool saw_crc = false;
  std::uint32_t crc_read = 0;
  std::size_t crc_covers = 0;  // bytes of `contents` the trailer checksums

  std::size_t consumed = line.size() + 1;
  bool damaged = false;
  while (std::getline(in, line)) {
    if (in.eof()) {
      // Unterminated final line: a tear mid-line can leave a prefix that
      // still parses — e.g. a chopped symbol name — so nothing short of a
      // newline-terminated line is trusted.
      damaged = true;
      break;
    }
    if (line == "truncated") {
      marked_truncated = true;
      consumed += line.size() + 1;
      continue;
    }
    unsigned crc = 0;
    char extra = 0;
    if (std::sscanf(line.c_str(), "crc %8x %c", &crc, &extra) == 1) {
      saw_crc = true;
      crc_read = crc;
      crc_covers = consumed;
      consumed += line.size() + 1;
      break;  // trailer is the last line; anything after it is damage
    }
    CodeMapEntry e;
    if (!parse_entry_line(line, e)) {
      damaged = true;
      break;  // stop at the first bad entry: everything after is suspect
    }
    r.file.entries.push_back(std::move(e));
    consumed += line.size() + 1;
  }

  const bool crc_ok =
      saw_crc && crc_covers <= contents.size() &&
      support::fnv1a(contents.data(), crc_covers) == crc_read;
  r.intact = !damaged && crc_ok && r.file.entries.size() == r.entries_expected &&
             consumed >= contents.size();
  r.file.truncated = marked_truncated || !r.intact;
  return r;
}

std::string CodeMapFile::path_for(const std::string& dir, hw::Pid pid,
                                  std::uint64_t epoch) {
  char buf[64];
  // Zero-padded epoch keeps VFS listing in epoch order.
  std::snprintf(buf, sizeof buf, "/%u/map.%08llu", pid,
                static_cast<unsigned long long>(epoch));
  return dir + buf;
}

std::optional<std::uint64_t> CodeMapFile::epoch_from_path(const std::string& path) {
  const auto dot = path.rfind("map.");
  if (dot == std::string::npos) return std::nullopt;
  const std::string digits = path.substr(dot + 4);
  if (digits.empty()) return std::nullopt;
  unsigned long long epoch = 0;
  char extra = 0;
  if (std::sscanf(digits.c_str(), "%llu%c", &epoch, &extra) != 1) return std::nullopt;
  return epoch;
}

CodeMapIndex::LoadStats CodeMapIndex::load(const os::Vfs& vfs, const std::string& dir,
                                           hw::Pid pid) {
  LoadStats stats;
  const std::string prefix = dir + "/" + std::to_string(pid) + "/map.";
  for (const std::string& path : vfs.list(prefix)) {
    const auto contents = vfs.read(path);
    VIPROF_CHECK(contents.has_value());
    // The file name carries the epoch, so even a fully corrupt file still
    // registers its epoch as truncated — the resolver must know the epoch
    // existed and is unaccounted for.
    const auto hint = CodeMapFile::epoch_from_path(path);
    const CodeMapFile::Recovery r =
        CodeMapFile::salvage(*contents, hint.value_or(0));
    ++stats.maps_loaded;
    if (r.file.truncated) {
      ++stats.maps_truncated;
      stats.entries_salvaged += r.file.entries.size();
    } else {
      ++stats.maps_intact;
    }
    stats.entries_loaded += r.file.entries.size();
    add(r.file);
  }
  return stats;
}

void CodeMapIndex::add(CodeMapFile file) {
  auto& map = maps_[file.epoch];
  VIPROF_CHECK(map.entries.empty() && !map.truncated);  // one map per epoch
  map.entries = std::move(file.entries);
  map.truncated = file.truncated;
  std::sort(map.entries.begin(), map.entries.end(),
            [](const CodeMapEntry& a, const CodeMapEntry& b) {
              return a.address < b.address;
            });
  total_entries_ += map.entries.size();
  if (map.truncated) ++truncated_count_;
}

const CodeMapEntry* CodeMapIndex::find_in(const EpochMap& map, hw::Address pc) const {
  auto e = std::upper_bound(map.entries.begin(), map.entries.end(), pc,
                            [](hw::Address a, const CodeMapEntry& m) {
                              return a < m.address;
                            });
  if (e == map.entries.begin()) return nullptr;
  --e;
  return e->contains(pc) ? &*e : nullptr;
}

std::optional<CodeMapIndex::Hit> CodeMapIndex::resolve(hw::Address pc,
                                                       std::uint64_t epoch) const {
  std::uint32_t searched = 0;
  // Iterate epochs <= `epoch` from newest to oldest.
  auto it = maps_.upper_bound(epoch);
  while (it != maps_.begin()) {
    --it;
    ++searched;
    if (const CodeMapEntry* e = find_in(it->second, pc)) {
      return Hit{e->symbol, it->first, searched, e->address, e->size};
    }
  }
  return std::nullopt;
}

CodeMapIndex::Lookup CodeMapIndex::lookup(hw::Address pc, std::uint64_t epoch) const {
  Lookup out;
  if (maps_.empty()) {
    out.miss = JitLookupMiss::kNoMaps;
    return out;
  }
  std::uint32_t searched = 0;
  for (std::uint64_t e = epoch;; --e) {
    auto it = maps_.find(e);
    if (it == maps_.end()) {
      // This epoch's map was lost. Some method may have been compiled or
      // moved here; falling through to an older map could resurrect a
      // stale placement, so the sample is explicitly unresolvable.
      out.miss = JitLookupMiss::kMissingEpochMap;
      return out;
    }
    ++searched;
    if (const CodeMapEntry* entry = find_in(it->second, pc)) {
      // A salvaged entry carries a verified checksum, so a hit is a hit
      // even inside a truncated map.
      out.hit = Hit{entry->symbol, e, searched, entry->address, entry->size};
      return out;
    }
    if (it->second.truncated) {
      // Absence from a truncated map proves nothing — the entry covering
      // `pc` may be among the lost lines.
      out.miss = JitLookupMiss::kTruncatedMap;
      return out;
    }
    if (e == 0) break;
  }
  out.miss = JitLookupMiss::kNotFound;
  return out;
}

std::uint64_t CodeMapIndex::max_epoch() const {
  if (maps_.empty()) return 0;
  return maps_.rbegin()->first;
}

}  // namespace viprof::core
