// Offline sample resolution — VIProf's modified OProfile post-processing
// (paper Sections 3.2-3.3).
//
// Turns a logged (pc, mode, pid, epoch) into (image, symbol):
//   * kernel PCs resolve against the kernel symbol table;
//   * mapped binaries/libraries resolve against their symbol tables
//     ("(no symbols)" when stripped);
//   * the JVM boot image resolves through the Jikes build's RVM.map —
//     VIProf only; stock OProfile reports the opaque RVM.code.image;
//   * registered-heap PCs resolve through the epoch code maps with the
//     paper's backward search (this epoch's map, else the one before, ...);
//     stock OProfile reports "anon (range:...)".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/code_map.hpp"
#include "core/registration.hpp"
#include "core/sample_log.hpp"
#include "os/machine.hpp"
#include "support/telemetry.hpp"

namespace viprof::core {

enum class SampleDomain : std::uint8_t {
  kHypervisor,  // Xen (XenoProf extension)
  kKernel,
  kImage,   // executable or shared library
  kBoot,    // JVM boot image
  kJit,     // dynamically generated code, resolved via code maps
  kAnon,    // anonymous mapping the tool cannot see into
  kObject,  // heap data object, resolved via epoch object maps (memprof)
  kUnknown,
};

inline const char* to_string(SampleDomain d) {
  switch (d) {
    case SampleDomain::kHypervisor: return "hypervisor";
    case SampleDomain::kKernel:  return "kernel";
    case SampleDomain::kImage:   return "image";
    case SampleDomain::kBoot:    return "boot";
    case SampleDomain::kJit:     return "jit";
    case SampleDomain::kAnon:    return "anon";
    case SampleDomain::kObject:  return "object";
    case SampleDomain::kUnknown: return "unknown";
  }
  return "?";
}

struct Resolution {
  std::string image;
  std::string symbol;
  SampleDomain domain = SampleDomain::kUnknown;
  std::uint32_t maps_searched = 0;  // JIT hits: backward-search depth

  // Extent of the resolved symbol in the sampled address space (0/0 when
  // unresolved); lets opannotate-style tools bucket samples *within* a
  // method body.
  hw::Address symbol_base = 0;
  std::uint64_t symbol_size = 0;
};

/// Resolution outcome tallies. The parallel pipeline gives each shard its
/// own ResolveStats and folds them into the resolver afterwards, so worker
/// threads never contend on shared counters.
struct ResolveStats {
  std::uint64_t jit_resolved = 0;
  std::uint64_t jit_unresolved = 0;
  std::uint64_t backward_steps = 0;
  std::uint64_t unresolved_missing_map = 0;
  std::uint64_t unresolved_truncated_map = 0;

  void merge(const ResolveStats& o) {
    jit_resolved += o.jit_resolved;
    jit_unresolved += o.jit_unresolved;
    backward_steps += o.backward_steps;
    unresolved_missing_map += o.unresolved_missing_map;
    unresolved_truncated_map += o.unresolved_truncated_map;
  }
};

/// Thread-safety contract (DESIGN.md §9): after load(), the stats-taking
/// resolve()/resolve_pc() overloads are safe to call from any number of
/// threads concurrently — they mutate nothing but the caller's ResolveStats
/// and the (atomic/mutexed) telemetry handles. The stats-less overloads and
/// fold() are also thread-safe; the tallies behind the accessors are
/// atomics. load() itself is exclusive.
class Resolver {
 public:
  /// `vm_aware` selects VIProf behaviour; false reproduces stock OProfile.
  Resolver(const os::Machine& machine, const RegistrationTable& table, bool vm_aware);

  /// Movable (the atomic tallies transfer by value); moves are exclusive,
  /// like any mutation under the thread-safety contract above.
  Resolver(Resolver&& other) noexcept
      : machine_(other.machine_),
        table_(other.table_),
        vm_aware_(other.vm_aware_),
        loaded_(other.loaded_),
        boot_maps_(std::move(other.boot_maps_)),
        boot_labels_(std::move(other.boot_labels_)),
        jit_maps_(std::move(other.jit_maps_)),
        jit_resolved_(other.jit_resolved_.load(std::memory_order_relaxed)),
        jit_unresolved_(other.jit_unresolved_.load(std::memory_order_relaxed)),
        backward_steps_(other.backward_steps_.load(std::memory_order_relaxed)),
        unresolved_missing_map_(
            other.unresolved_missing_map_.load(std::memory_order_relaxed)),
        unresolved_truncated_map_(
            other.unresolved_truncated_map_.load(std::memory_order_relaxed)),
        tele_jit_resolved_(other.tele_jit_resolved_),
        tele_jit_unresolved_(other.tele_jit_unresolved_),
        tele_missing_map_(other.tele_missing_map_),
        tele_truncated_map_(other.tele_truncated_map_),
        tele_walkback_(other.tele_walkback_) {}

  /// Reads RVM.map and all epoch code maps from the VFS. Must be called
  /// before resolve(); safe to call with no registrations.
  void load();

  Resolution resolve(const LoggedSample& sample) const;
  Resolution resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                        std::uint64_t epoch) const;

  /// Pure-with-respect-to-the-resolver variants: outcome tallies go into
  /// `stats` instead of the internal counters. Callers that want the
  /// accessors below to reflect their work fold() the stats back in.
  Resolution resolve(const LoggedSample& sample, ResolveStats& stats) const;
  Resolution resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                        std::uint64_t epoch, ResolveStats& stats) const;

  /// Adds shard tallies into the internal counters.
  void fold(const ResolveStats& stats) const;

  const CodeMapIndex* code_maps(hw::Pid pid) const;
  std::uint64_t jit_resolved() const {
    return jit_resolved_.load(std::memory_order_relaxed);
  }
  std::uint64_t jit_unresolved() const {
    return jit_unresolved_.load(std::memory_order_relaxed);
  }
  std::uint64_t backward_steps() const {
    return backward_steps_.load(std::memory_order_relaxed);
  }

  /// Degradation accounting: JIT samples whose epoch map was lost or
  /// salvaged-incomplete. These land in the `unresolved.missing_map` /
  /// `unresolved.truncated_map` bins — counted, never misattributed.
  std::uint64_t unresolved_missing_map() const {
    return unresolved_missing_map_.load(std::memory_order_relaxed);
  }
  std::uint64_t unresolved_truncated_map() const {
    return unresolved_truncated_map_.load(std::memory_order_relaxed);
  }

 private:
  const os::Machine* machine_;
  const RegistrationTable* table_;
  bool vm_aware_;
  bool loaded_ = false;

  // Per registered VM: parsed boot map (+ its display label) and the
  // epoch code-map index.
  std::unordered_map<hw::Pid, os::SymbolTable> boot_maps_;
  std::unordered_map<hw::Pid, std::string> boot_labels_;
  std::unordered_map<hw::Pid, CodeMapIndex> jit_maps_;

  mutable std::atomic<std::uint64_t> jit_resolved_{0};
  mutable std::atomic<std::uint64_t> jit_unresolved_{0};
  mutable std::atomic<std::uint64_t> backward_steps_{0};
  mutable std::atomic<std::uint64_t> unresolved_missing_map_{0};
  mutable std::atomic<std::uint64_t> unresolved_truncated_map_{0};

  // Self-telemetry handles (resolver.* namespace, DESIGN.md §8). The
  // registry is reachable through the const machine because telemetry is a
  // mutable member — resolution is logically const, instrumentation is not
  // part of the observable profile.
  support::Counter* tele_jit_resolved_ = nullptr;
  support::Counter* tele_jit_unresolved_ = nullptr;
  support::Counter* tele_missing_map_ = nullptr;
  support::Counter* tele_truncated_map_ = nullptr;
  support::LatencyHistogram* tele_walkback_ = nullptr;  // maps searched per hit
};

/// Symbol names of the explicit degradation bins. A sample is *never*
/// silently attributed to a neighbouring method when its epoch map is
/// damaged; it lands in one of these instead.
inline constexpr const char* kUnresolvedMissingMap = "unresolved.missing_map";
inline constexpr const char* kUnresolvedTruncatedMap = "unresolved.truncated_map";
inline constexpr const char* kUnknownJit = "(unknown JIT code)";

}  // namespace viprof::core
