#include "core/agent.hpp"

#include "support/backoff.hpp"
#include "support/check.hpp"

namespace viprof::core {

VmAgent::VmAgent(os::Machine& machine, SampleBuffer& buffer, RegistrationTable& table,
                 const AgentConfig& config)
    : machine_(&machine), buffer_(&buffer), table_(&table), config_(config) {
  support::Telemetry& tele = machine_->telemetry();
  tele_compiles_ = &tele.counter("agent.compiles_logged");
  tele_moves_ = &tele.counter("agent.moves_flagged");
  tele_maps_written_ = &tele.counter("agent.maps_written");
  tele_map_entries_ = &tele.counter("agent.map_entries");
  tele_maps_dropped_ = &tele.counter("agent.maps_dropped");
  tele_map_errors_ = &tele.counter("agent.map_write_errors");
  tele_map_cost_ = &tele.histogram("agent.map_write.cost_cycles", 0, 50'000, 32);
  tele_map_entries_hist_ = &tele.histogram("agent.map_write.entries", 0, 16, 32);
}

hw::Cycles VmAgent::on_vm_start(const jvm::VmStartInfo& info) {
  heap_ = info.heap;
  pid_ = info.pid;

  // The agent is "implemented as a library with several hooks in the VM's
  // code" — give it a real identity in the process image map.
  os::Image& lib =
      machine_->registry().create("libviprofagent.so", os::ImageKind::kSharedLib, 16 * 1024);
  lib.symbols().add("viprof_register_vm", 0, 2048);
  lib.symbols().add("viprof_log_compile", 2048, 2048);
  lib.symbols().add("viprof_flag_move", 4096, 1024);
  lib.symbols().add("viprof_write_code_map", 5120, 6144);
  lib.symbols().add("viprof_notify_daemon", 11264, 2048);
  os::Process* proc = machine_->find_process(info.pid);
  VIPROF_CHECK(proc != nullptr);
  const os::Vma vma = machine_->loader().load_library(*proc, lib.id());
  context_ = hw::ExecContext{vma.start, lib.size(), hw::CpuMode::kUser, info.pid};

  VmRegistration reg;
  reg.pid = info.pid;
  reg.heap_lo = info.heap_lo;
  reg.heap_hi = info.heap_hi;
  reg.boot_base = info.boot_base;
  reg.boot_size = info.boot ? info.boot->size() : 0;
  reg.boot_map_path = info.boot ? info.boot->map_path() : "";
  reg.jit_map_dir = config_.map_dir;
  reg.obj_map_dir = config_.obj_map_dir;
  table_->add(reg);

  stats_.cost_cycles += config_.registration_cost;
  return config_.registration_cost;
}

hw::Cycles VmAgent::on_method_compiled(const jvm::MethodInfo& method,
                                       const jvm::CodeObject& code) {
  signatures_[code.id] = method.qualified_name();
  if (pending_set_.insert(code.id).second) pending_.push_back(code.id);
  ++stats_.compiles_logged;
  tele_compiles_->inc();
  stats_.cost_cycles += config_.compile_hook_cost;
  return config_.compile_hook_cost;
}

hw::Cycles VmAgent::on_method_moved(const jvm::MethodInfo& method,
                                    hw::Address old_address,
                                    const jvm::CodeObject& code) {
  (void)method;
  (void)old_address;
  // Either cheap flagging (the shipped design) or, for the ablation, full
  // logging from inside the collector. Both end with the body in the next
  // partial map; the difference is purely where the cycles are spent.
  if (pending_set_.insert(code.id).second) pending_.push_back(code.id);
  if (config_.log_moves_immediately) {
    ++stats_.moves_logged;
    stats_.cost_cycles += config_.move_log_cost;
    return config_.move_log_cost;
  }
  ++stats_.moves_flagged;
  tele_moves_->inc();
  stats_.cost_cycles += config_.move_flag_cost;
  return config_.move_flag_cost;
}

hw::Cycles VmAgent::on_epoch_end(std::uint64_t epoch, bool final_epoch) {
  (void)final_epoch;
  if (!dead_ && config_.fault != nullptr &&
      config_.fault->should_kill(support::FaultComponent::kAgent,
                                 machine_->cpu().now())) {
    dead_ = true;
  }
  if (dead_) {
    // The agent died: no map, no epoch marker. The daemon keeps logging
    // with the last delivered epoch, and post-processing sends every
    // sample of an epoch without a map to an explicit unresolved bin —
    // degraded, counted, never misattributed.
    ++stats_.killed_epochs;
    return 0;
  }
  return write_map(epoch);
}

hw::Cycles VmAgent::write_map(std::uint64_t epoch) {
  VIPROF_CHECK(heap_ != nullptr);
  CodeMapFile file;
  file.epoch = epoch;
  auto emit = [&](jvm::CodeId id) {
    const jvm::CodeObject& code = heap_->code(id);
    CodeMapEntry e;
    e.address = code.address;
    e.size = code.size;
    auto sig = signatures_.find(id);
    VIPROF_CHECK(sig != signatures_.end());
    e.symbol = sig->second;
    file.entries.push_back(std::move(e));
  };
  if (config_.write_full_maps) {
    // ABL2 alternative: dump every live body the agent knows about, plus
    // the pending buffer — a body compiled *and* superseded within this
    // epoch is dead already but may have absorbed samples, and no other
    // map will ever cover its address range.
    std::unordered_set<jvm::CodeId> emitted;
    for (const jvm::CodeObject& code : heap_->all_code()) {
      if (!code.dead && signatures_.count(code.id) && emitted.insert(code.id).second) {
        emit(code.id);
      }
    }
    for (jvm::CodeId id : pending_) {
      if (emitted.insert(id).second) emit(id);
    }
  } else {
    // The paper's partial map: bodies compiled this epoch plus bodies the
    // previous collection moved. Bodies superseded within the epoch are
    // written too: samples taken before the recompile landed in the old
    // body, and its address range is not reused until after the upcoming
    // GC, so the entry cannot overlap anything live.
    file.entries.reserve(pending_.size());
    for (jvm::CodeId id : pending_) emit(id);
  }
  const std::string path = CodeMapFile::path_for(config_.map_dir, pid_, epoch);
  const std::string blob = file.serialize();
  hw::Cycles cost =
      config_.map_write_base +
      config_.map_write_per_entry * static_cast<hw::Cycles>(file.entries.size());

  os::IoStatus st = machine_->vfs().write(path, blob);
  if (st == os::IoStatus::kIoError || st == os::IoStatus::kNoSpace) {
    ++stats_.map_write_errors;
    tele_map_errors_->inc();
    // Shared retry policy (support::Backoff): flat delays (multiplier 1.0),
    // no jitter — the agent has always retried at a fixed per-attempt cost.
    support::BackoffConfig policy;
    policy.initial = config_.map_retry_cost;
    policy.multiplier = 1.0;
    policy.max_attempts = config_.map_write_retries;
    support::Backoff backoff(policy);
    while (st == os::IoStatus::kIoError || st == os::IoStatus::kNoSpace) {
      const auto delay = backoff.next();
      if (!delay) break;
      cost += *delay;
      ++stats_.map_write_retries;
      st = machine_->vfs().write(path, blob);
    }
  }
  switch (st) {
    case os::IoStatus::kOk:
      ++stats_.maps_written;
      stats_.map_entries_written += file.entries.size();
      tele_maps_written_->inc();
      tele_map_entries_->inc(file.entries.size());
      break;
    case os::IoStatus::kTorn:
      // A prefix landed; the checksum trailer is gone, so the reader will
      // mark the map truncated and salvage the verifiable entries.
      ++stats_.maps_torn;
      ++stats_.maps_written;
      stats_.map_entries_written += file.entries.size();
      tele_maps_written_->inc();
      tele_map_entries_->inc(file.entries.size());
      break;
    case os::IoStatus::kIoError:
    case os::IoStatus::kNoSpace:
      // The epoch closes without a map; its samples will land in the
      // unresolved.missing_map bin. Counted here, never silent.
      ++stats_.maps_dropped;
      tele_maps_dropped_->inc();
      break;
  }
  tele_map_cost_->add(static_cast<double>(cost));
  tele_map_entries_hist_->add(static_cast<double>(file.entries.size()));
  // GC-epoch span marker: the map write happens inside the epoch boundary,
  // while the VM is paused for collection. `arg` carries the closing epoch.
  const hw::Cycles map_begin = machine_->cpu().now();
  machine_->telemetry().spans().record("agent.map_write", "gc", map_begin,
                                       map_begin + cost, epoch);

  // Notify the daemon through the ordered sample stream: samples enqueued
  // after this marker belong to the next epoch. Sent even when the map
  // write failed: advancing the epoch keeps later samples out of *older*
  // maps (stale attribution); the lost map's own epoch degrades to an
  // explicit unresolved bin instead.
  buffer_->push(Sample::epoch_marker(pid_, epoch, machine_->cpu().now()));

  stats_.cost_cycles += cost;

  if (st == os::IoStatus::kIoError || st == os::IoStatus::kNoSpace) {
    // Keep the code buffer: the entries ride along into the next epoch's
    // map, so the method bodies are not lost forever — only the dropped
    // epoch itself degrades to unresolved.
    return cost;
  }
  pending_.clear();
  pending_set_.clear();
  return cost;
}

}  // namespace viprof::core
