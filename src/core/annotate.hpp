// opannotate analogue: distribution of samples *within* one symbol's body.
//
// OProfile ships opannotate to locate hot basic blocks inside a function;
// the same capability falls out of VIProf's resolution metadata (each
// resolution carries the resolved symbol's extent). Samples matching the
// requested (image, symbol) are bucketed by their offset into the body.
// For JIT methods this works across GC moves: the offset is computed
// against the body's address *in the epoch the sample was taken*, so the
// intra-method distribution is stable even though the body wandered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sample_log.hpp"
#include "hw/types.hpp"

namespace viprof::core {

struct Resolution;

struct Annotation {
  std::string image;
  std::string symbol;
  std::uint64_t symbol_size = 0;   // from the first matching resolution
  std::uint64_t total_samples = 0;
  std::uint64_t out_of_range = 0;  // extent changed between epochs (rare)
  std::vector<std::uint64_t> buckets;

  /// ASCII rendering: one line per bucket with offset range and bar.
  std::string render() const;
};

/// Bucket samples matching (image, symbol). `resolve` is any callable
/// LoggedSample -> Resolution (live Resolver, ArchiveResolver, ...).
template <typename ResolveFn>
Annotation annotate(const std::vector<LoggedSample>& samples, const ResolveFn& resolve,
                    const std::string& image, const std::string& symbol,
                    std::size_t bucket_count = 16);

}  // namespace viprof::core

#include "core/resolver.hpp"  // Resolution definition for the template body

namespace viprof::core {

template <typename ResolveFn>
Annotation annotate(const std::vector<LoggedSample>& samples, const ResolveFn& resolve,
                    const std::string& image, const std::string& symbol,
                    std::size_t bucket_count) {
  Annotation out;
  out.image = image;
  out.symbol = symbol;
  out.buckets.assign(bucket_count == 0 ? 1 : bucket_count, 0);
  for (const LoggedSample& s : samples) {
    const Resolution res = resolve(s);
    if (res.image != image || res.symbol != symbol) continue;
    ++out.total_samples;
    if (res.symbol_size == 0 || s.pc < res.symbol_base ||
        s.pc >= res.symbol_base + res.symbol_size) {
      ++out.out_of_range;
      continue;
    }
    if (out.symbol_size == 0) out.symbol_size = res.symbol_size;
    const std::uint64_t offset = s.pc - res.symbol_base;
    const std::size_t bucket = static_cast<std::size_t>(
        (offset * out.buckets.size()) / res.symbol_size);
    ++out.buckets[bucket < out.buckets.size() ? bucket : out.buckets.size() - 1];
  }
  return out;
}

}  // namespace viprof::core
