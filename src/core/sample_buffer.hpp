// Lock-free single-producer/single-consumer ring buffer for samples.
//
// Sits on OProfile's NMI-handler → daemon boundary: the producer runs in
// (simulated) NMI context and must never block or allocate; the consumer is
// the user-level daemon. Implemented with acquire/release atomics so it is
// also correct under real concurrent threads (exercised by the test suite),
// even though the simulator itself drives it single-threaded.
//
// Capacity is rounded up to a power of two. When the ring is full the
// producer *drops* the sample and counts it — exactly what OProfile does
// (the "overflow" statistics in /dev/oprofile) — because stalling an NMI
// handler is not an option.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/sample.hpp"

namespace viprof::core {

class SampleBuffer {
 public:
  explicit SampleBuffer(std::size_t capacity);

  SampleBuffer(const SampleBuffer&) = delete;
  SampleBuffer& operator=(const SampleBuffer&) = delete;

  /// Producer side (NMI context). Returns false (and counts a drop) when full.
  bool push(const Sample& sample);

  /// Consumer side (daemon). Returns nullopt when empty.
  std::optional<Sample> pop();

  /// Consumer-side view of the backlog (approximate under concurrency).
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t popped() const { return popped_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// High-water mark of the backlog (occupancy just after the fullest
  /// push). Maintained producer-side, so NMI context pays one relaxed
  /// CAS-max; telemetry reads it at session end.
  std::uint64_t peak_occupancy() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::vector<Sample> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next pop index
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next push index
  alignas(64) std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> peak_{0};
};

}  // namespace viprof::core
