// Cross-layer call-graph profiling (paper Section 4.2: "VIProf also extends
// the call graph functionality of Oprofile to include call sequence
// profiles across layers").
//
// Each sample optionally carries a one-level return address; arcs aggregate
// (caller symbol → callee symbol) pairs after both endpoints are resolved —
// so an arc can cross layers: a JIT.App method calling into libc, a JIT
// method triggering a kernel path, etc.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/resolver.hpp"
#include "core/sample_log.hpp"
#include "hw/event.hpp"

namespace viprof::core {

struct CallArc {
  std::string caller_image;
  std::string caller_symbol;
  std::string callee_image;
  std::string callee_symbol;
  SampleDomain caller_domain = SampleDomain::kUnknown;
  SampleDomain callee_domain = SampleDomain::kUnknown;
  std::uint64_t count = 0;

  /// True when caller and callee live in different stack layers.
  bool crosses_layers() const { return caller_domain != callee_domain; }
};

class CallGraph {
 public:
  /// A graph fed through add_resolved() only — the profile service resolves
  /// both endpoints itself (its resolver choice varies per batch) and hands
  /// this graph finished Resolutions.
  CallGraph() = default;

  explicit CallGraph(const Resolver& resolver) : resolver_(&resolver) {}

  const Resolver& resolver() const { return *resolver_; }

  /// Accounts one sample; samples without a caller PC are ignored.
  /// Requires the resolver-taking constructor.
  void add(const LoggedSample& sample);

  /// Accounts one already-resolved (caller → callee) pair; works on
  /// resolver-less graphs. Callers skip samples without a caller PC to
  /// match add()'s accounting. The counted overload folds `count` repeats
  /// of the same pair in one arc lookup.
  void add_resolved(const Resolution& caller, const Resolution& callee);
  void add_resolved(const Resolution& caller, const Resolution& callee,
                    std::uint64_t count);

  /// Folds one finished arc — `arc.count` samples in a single lookup. Used
  /// by the striped aggregator's order recovery (SeqCallGraph::ordered).
  void add_arc(const CallArc& arc);

  /// Interning API mirroring Profile::row_index/bump: intern the arc slot
  /// once, then bump repeats without rebuilding the 4-part key string.
  /// arc_index() + bump_arc() == add_resolved().
  std::size_t arc_index(const Resolution& caller, const Resolution& callee);
  void bump_arc(std::size_t arc, std::uint64_t count = 1) {
    arcs_[arc].count += count;
    samples_ += count;
  }

  /// Adds every arc (and the sample count) of `other` into this graph.
  /// Shard-order merging reproduces the serial arc order, as with
  /// Profile::merge.
  void merge(const CallGraph& other);

  /// Arcs sorted by count (descending).
  std::vector<CallArc> ranked() const;

  /// Only arcs whose endpoints are in different domains.
  std::vector<CallArc> cross_layer_arcs() const;

  std::uint64_t total_arcs() const { return arcs_.size(); }
  std::uint64_t total_samples() const { return samples_; }
  const std::vector<CallArc>& arcs() const { return arcs_; }

  std::string render(std::size_t top_n) const;

 private:
  std::size_t arc_slot(const CallArc& like);
  CallArc& arc_for(const CallArc& like) { return arcs_[arc_slot(like)]; }

  const Resolver* resolver_ = nullptr;
  std::vector<CallArc> arcs_;
  /// NUL-joined endpoint names -> index into arcs_.
  std::unordered_map<std::string, std::size_t> index_;
  std::uint64_t samples_ = 0;
};

}  // namespace viprof::core
