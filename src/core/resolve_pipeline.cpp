#include "core/resolve_pipeline.hpp"

#include <algorithm>
#include <thread>

#include "core/striped_agg.hpp"

namespace viprof::core {

ResolvePipeline::ResolvePipeline(PipelineConfig config) : config_(config) {
  threads_ = config_.threads != 0
                 ? config_.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (threads_ > 1) {
    pool_ = std::make_unique<support::ThreadPool>(threads_);
    if (config_.telemetry != nullptr) pool_->attach_telemetry(*config_.telemetry);
  }
}

ResolvePipeline::~ResolvePipeline() = default;

std::size_t ResolvePipeline::shard_count(std::size_t count) const {
  if (threads_ <= 1 || count == 0) return 1;
  const std::size_t min_shard = std::max<std::size_t>(1, config_.min_shard);
  return std::min(threads_, std::max<std::size_t>(1, count / min_shard));
}

ResolveStats ResolvePipeline::aggregate_profile(
    const std::vector<LoggedSample>& samples, hw::EventKind event,
    const ResolveFn& fn, Profile& out) {
  ResolveStats total;
  const std::size_t n = samples.size();
  const std::size_t shards = shard_count(n);
  if (shards <= 1) {
    // Batched interning even when serial: repeated symbols bump a cached
    // row index instead of rebuilding the profile key per sample.
    RowMemo memo;
    for (const LoggedSample& s : samples)
      memo.add(out, event, s.pid, s.epoch, fn(s, total));
    return total;
  }

  std::vector<Profile> parts(shards);
  std::vector<ResolveStats> stats(shards);
  pool_->parallel_for(shards, [&](std::size_t k) {
    const std::size_t lo = n * k / shards;
    const std::size_t hi = n * (k + 1) / shards;
    RowMemo memo;  // one per shard: a memo is valid for one target Profile
    for (std::size_t i = lo; i < hi; ++i) {
      const LoggedSample& s = samples[i];
      memo.add(parts[k], event, s.pid, s.epoch, fn(s, stats[k]));
    }
  });
  // Shard-order merge: deterministic, reproduces the serial row order.
  for (std::size_t k = 0; k < shards; ++k) {
    out.merge(parts[k]);
    total.merge(stats[k]);
  }
  return total;
}

void ResolvePipeline::aggregate_callgraph(const std::vector<LoggedSample>& samples,
                                          CallGraph& out) {
  const std::size_t n = samples.size();
  const std::size_t shards = shard_count(n);
  if (shards <= 1) {
    for (const LoggedSample& s : samples) out.add(s);
    return;
  }

  std::vector<CallGraph> parts(shards, CallGraph(out.resolver()));
  pool_->parallel_for(shards, [&](std::size_t k) {
    const std::size_t lo = n * k / shards;
    const std::size_t hi = n * (k + 1) / shards;
    for (std::size_t i = lo; i < hi; ++i) parts[k].add(samples[i]);
  });
  for (const CallGraph& part : parts) out.merge(part);
}

}  // namespace viprof::core
