// Profiling session drivers: wires counters, NMI handler, daemon and VM
// agent around a VM run, then exposes the offline post-processing step.
//
// Three modes reproduce the paper's experimental arms:
//   kBase     — counters off, no daemon, no agent (Fig. 3 base times);
//   kOprofile — stock OProfile: sampling + daemon, JIT code is anonymous;
//   kViprof   — OProfile + VM registration + agent + epoch code maps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.hpp"
#include "core/callgraph.hpp"
#include "core/daemon.hpp"
#include "core/registration.hpp"
#include "core/report.hpp"
#include "core/resolver.hpp"
#include "core/sample_buffer.hpp"
#include "jvm/vm.hpp"
#include "os/machine.hpp"

namespace viprof::core {

enum class ProfilingMode : std::uint8_t { kBase, kOprofile, kViprof };

inline const char* to_string(ProfilingMode mode) {
  switch (mode) {
    case ProfilingMode::kBase:     return "base";
    case ProfilingMode::kOprofile: return "oprofile";
    case ProfilingMode::kViprof:   return "viprof";
  }
  return "?";
}

struct SessionConfig {
  ProfilingMode mode = ProfilingMode::kViprof;

  /// Events and sampling periods. Default matches the paper's Fig. 1 run:
  /// time (cycles) at the median 90K period plus L2 misses.
  std::vector<hw::CounterConfig> counters = {
      {hw::EventKind::kGlobalPowerEvents, 90'000, true},
      {hw::EventKind::kBsqCacheReference, 1'000, true},
  };

  hw::Cycles nmi_cost = 2'200;       // kernel-half cost per sample
  std::size_t buffer_capacity = 64 * 1024;
  std::uint32_t pc_skid = 0;         // optional hardware skid, bytes

  /// Optional fault injector: attach() installs it into the machine's VFS
  /// and hands it to the daemon and agent (write faults, scheduled kills).
  /// Not owned; must outlive the session.
  support::FaultInjector* fault = nullptr;

  /// Host worker threads for offline post-processing (build_profile /
  /// build_callgraph): 1 = serial, 0 = one per hardware thread. Output is
  /// byte-identical for any value; only the online path is simulated, so
  /// this does not disturb the measured run.
  std::size_t resolve_threads = 1;

  DaemonConfig daemon;
  AgentConfig agent;
};

struct SessionResult {
  jvm::RunStats vm;
  hw::Cycles cycles = 0;          // measured run cycles (the Fig. 2 metric)
  std::uint64_t nmi_count = 0;
  hw::Cycles nmi_cycles = 0;
  std::uint64_t samples_dropped = 0;
  /// Backlog a crashed daemon never drained (0 in healthy runs).
  std::uint64_t samples_left_in_buffer = 0;
  DaemonStats daemon;
  AgentStats agent;
};

class ProfilingSession {
 public:
  /// Construct *before* vm.setup(): the agent must observe on_vm_start.
  ProfilingSession(os::Machine& machine, jvm::Vm& vm, const SessionConfig& config);
  ~ProfilingSession();

  ProfilingSession(const ProfilingSession&) = delete;
  ProfilingSession& operator=(const ProfilingSession&) = delete;

  /// Installs counters/handler and registers daemon + agent with the VM.
  void attach();

  /// Runs the program (vm.setup must have been called) and flushes logs.
  SessionResult run();

  /// Step-mode counterpart of run(): the caller drives vm.step() itself
  /// (crash/restart scenarios need control mid-run) and then calls this to
  /// fire vm.finish(), final-flush the daemon and assemble the result.
  SessionResult finish_run();

  /// Brings a crashed daemon back (see Daemon::restart). The restarted
  /// daemon reattaches to the same buffer and sample tree.
  void restart_daemon();

  // --- Offline post-processing --------------------------------------------
  /// Aggregated profile over the given events (empty in base mode).
  Profile build_profile(const std::vector<hw::EventKind>& events);

  /// Cross-layer call graph from the samples of `event`.
  CallGraph build_callgraph(hw::EventKind event);

  /// Fig. 1-style text report.
  std::string report_text(const std::vector<hw::EventKind>& events, std::size_t top_n);

  /// The verified samples of `event`, read from the daemon's log once and
  /// cached — repeated build_profile/build_callgraph/report_text calls no
  /// longer re-read and re-verify the log per event. Invalidated when the
  /// daemon may write again (finish_run, restart_daemon).
  const std::vector<LoggedSample>& logged_samples(hw::EventKind event);

  /// Writes the offline-resolution archive (manifest + everything the
  /// ArchiveResolver needs) into the machine's VFS under `prefix`. Also
  /// drops a telemetry snapshot under `prefix`/telemetry.
  void export_archive(const std::string& prefix = "archive");

  /// Writes the self-telemetry snapshot into the VFS under `prefix`:
  ///   <prefix>/metrics.json  — registry snapshot (viprof_stat input)
  ///   <prefix>/metrics.txt   — human-readable registry dump
  ///   <prefix>/trace.json    — Chrome-trace-format span log
  void export_telemetry(const std::string& prefix = "telemetry");

  const SessionConfig& config() const { return config_; }
  const RegistrationTable& registrations() const { return table_; }
  const Daemon* daemon() const { return daemon_.get(); }
  const VmAgent* agent() const { return agent_.get(); }
  SampleBuffer* buffer() { return buffer_.get(); }
  Resolver& resolver();

 private:
  os::Machine* machine_;
  jvm::Vm* vm_;
  SessionConfig config_;
  RegistrationTable table_;
  std::unique_ptr<SampleBuffer> buffer_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<VmAgent> agent_;
  std::unique_ptr<Resolver> resolver_;
  /// Per-event sample cache for post-processing, keyed by event index.
  std::unordered_map<std::size_t, std::vector<LoggedSample>> sample_cache_;
  bool attached_ = false;
  bool ran_ = false;

  // Self-telemetry handles (os.nmi.* / profiler.* namespaces, DESIGN.md §8).
  support::Counter* tele_nmi_delivered_ = nullptr;
  support::Counter* tele_nmi_dropped_ = nullptr;
};

}  // namespace viprof::core
