#include "core/sample_log.hpp"

#include <cstdio>

namespace viprof::core {

std::string SampleLogWriter::path_for(const std::string& dir, hw::EventKind event) {
  return dir + "/" + hw::to_string(event) + ".samples";
}

void SampleLogWriter::append(hw::EventKind event, const LoggedSample& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%llx %llx %c %u %llu %llu\n",
                static_cast<unsigned long long>(s.pc),
                static_cast<unsigned long long>(s.caller_pc),
                s.mode == hw::CpuMode::kKernel
                    ? 'k'
                    : (s.mode == hw::CpuMode::kHypervisor ? 'h' : 'u'),
                s.pid,
                static_cast<unsigned long long>(s.epoch),
                static_cast<unsigned long long>(s.cycle));
  pending_[hw::event_index(event)] += buf;
  ++written_[hw::event_index(event)];
}

void SampleLogWriter::flush() {
  for (std::size_t i = 0; i < hw::kEventKindCount; ++i) {
    if (pending_[i].empty()) continue;
    vfs_->append(path_for(dir_, static_cast<hw::EventKind>(i)), pending_[i]);
    pending_[i].clear();
  }
}

std::vector<LoggedSample> SampleLogReader::read(const os::Vfs& vfs,
                                                const std::string& dir,
                                                hw::EventKind event) {
  std::vector<LoggedSample> out;
  const auto contents = vfs.read(SampleLogWriter::path_for(dir, event));
  if (!contents) return out;
  const char* p = contents->c_str();
  while (*p) {
    LoggedSample s;
    unsigned long long pc = 0;
    unsigned long long caller = 0;
    char mode = 'u';
    unsigned pid = 0;
    unsigned long long epoch = 0;
    unsigned long long cycle = 0;
    int consumed = 0;
    if (std::sscanf(p, "%llx %llx %c %u %llu %llu\n%n", &pc, &caller, &mode, &pid,
                    &epoch, &cycle, &consumed) != 6) {
      break;
    }
    s.pc = pc;
    s.caller_pc = caller;
    s.mode = mode == 'k' ? hw::CpuMode::kKernel
             : mode == 'h' ? hw::CpuMode::kHypervisor
                           : hw::CpuMode::kUser;
    s.pid = pid;
    s.epoch = epoch;
    s.cycle = cycle;
    out.push_back(s);
    p += consumed;
  }
  return out;
}

}  // namespace viprof::core
