#include "core/sample_log.hpp"

#include <cstdio>

#include "support/arena.hpp"
#include "support/format.hpp"

namespace viprof::core {

std::string SampleLogWriter::path_for(const std::string& dir, hw::EventKind event) {
  return dir + "/" + hw::to_string(event) + ".samples";
}

void SampleLogWriter::append(hw::EventKind event, const LoggedSample& s) {
  const std::size_t i = hw::event_index(event);
  char buf[192];
  const int body = std::snprintf(
      buf, sizeof buf, "%llu %llx %llx %c %u %llu %llu",
      static_cast<unsigned long long>(next_seq_[i]++),
      static_cast<unsigned long long>(s.pc),
      static_cast<unsigned long long>(s.caller_pc),
      s.mode == hw::CpuMode::kKernel
          ? 'k'
          : (s.mode == hw::CpuMode::kHypervisor ? 'h' : 'u'),
      s.pid,
      static_cast<unsigned long long>(s.epoch),
      static_cast<unsigned long long>(s.cycle));
  const std::uint32_t crc = support::fnv1a(buf, static_cast<std::size_t>(body));
  std::snprintf(buf + body, sizeof buf - static_cast<std::size_t>(body), " %08x\n",
                crc);
  pending_[i] += buf;
  ++pending_records_[i];
  ++written_[i];
}

LogFlushResult SampleLogWriter::flush() {
  LogFlushResult result;
  for (std::size_t i = 0; i < hw::kEventKindCount; ++i) {
    if (pending_[i].empty()) continue;
    const os::IoStatus status =
        vfs_->append(path_for(dir_, static_cast<hw::EventKind>(i)), pending_[i]);
    switch (status) {
      case os::IoStatus::kOk:
        pending_[i].clear();
        pending_records_[i] = 0;
        break;
      case os::IoStatus::kTorn:
        // A prefix landed; the writer (like a real daemon after a crashed
        // write) believes the batch is out. The reader's framing detects
        // and salvages around the tear.
        ++result.torn_writes;
        pending_[i].clear();
        pending_records_[i] = 0;
        break;
      case os::IoStatus::kIoError:
      case os::IoStatus::kNoSpace: {
        // Spill: keep the batch for a later retry, bounded. Drop whole
        // oldest records (never partial lines) beyond the bound so the
        // spill itself can never produce a torn record.
        ++result.write_errors;
        result.fully_flushed = false;
        while (pending_[i].size() > spill_capacity_ && pending_records_[i] > 0) {
          const std::size_t nl = pending_[i].find('\n');
          const std::size_t cut = nl == std::string::npos ? pending_[i].size() : nl + 1;
          result.bytes_dropped += cut;
          pending_[i].erase(0, cut);
          --pending_records_[i];
          ++result.records_dropped;
          ++spill_dropped_;
        }
        break;
      }
    }
  }
  return result;
}

std::uint64_t SampleLogWriter::discard_pending() {
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < hw::kEventKindCount; ++i) {
    lost += pending_records_[i];
    pending_[i].clear();
    pending_records_[i] = 0;
  }
  return lost;
}

std::size_t SampleLogWriter::pending_bytes() const {
  std::size_t total = 0;
  for (const std::string& p : pending_) total += p.size();
  return total;
}

std::vector<LoggedSample> SampleLogReader::read(const os::Vfs& vfs,
                                                const std::string& dir,
                                                hw::EventKind event) {
  SampleLogReadStatus status;
  return read_checked(vfs, dir, event, status);
}

template <typename Sink>
void SampleStreamParser::parse_into(std::string_view text, Sink& out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool unterminated = nl == std::string_view::npos;
    if (unterminated) nl = text.size();
    const std::size_t len = nl - pos;

    // Verify the frame: "<seq> <pc> <caller> <mode> <pid> <epoch> <cycle> <crc>"
    // where <crc> is FNV-1a over everything before its separating space.
    bool ok = !unterminated && len >= 10;
    unsigned long long seq = 0, pc = 0, caller = 0, epoch = 0, cycle = 0;
    unsigned pid = 0, crc_read = 0;
    char mode = 'u';
    if (ok) {
      const std::size_t last_space = text.rfind(' ', nl - 1);
      ok = last_space != std::string_view::npos && last_space > pos &&
           nl - last_space - 1 == 8;
      if (ok) {
        const std::string body(text.substr(pos, last_space - pos));
        const std::string crc_text(text.substr(last_space + 1, 8));
        char extra = 0;
        ok = std::sscanf(body.c_str(), "%llu %llx %llx %c %u %llu %llu %c", &seq,
                         &pc, &caller, &mode, &pid, &epoch, &cycle, &extra) == 7 &&
             std::sscanf(crc_text.c_str(), "%8x", &crc_read) == 1 &&
             support::fnv1a(body) == crc_read;
      }
    }

    if (!ok) {
      // Torn or overwritten bytes: resynchronise at the next newline. The
      // checksum makes accepting a *wrong* record vanishingly unlikely, so
      // skipping is safe — the damage is counted, never mis-parsed.
      status_.corrupt = true;
      ++status_.discarded_lines;
      status_.discarded_bytes += len + (unterminated ? 0 : 1);
      pos = nl + (unterminated ? 0 : 1);
      if (unterminated) break;
      continue;
    }

    if (seq < next_expected_) {
      // A replayed batch that had partially landed: drop the duplicate.
      ++status_.duplicate_records;
      pos = nl + 1;
      continue;
    }
    if (seq > next_expected_) status_.missing_records += seq - next_expected_;
    next_expected_ = seq + 1;
    status_.max_seq = seq;

    LoggedSample s;
    s.pc = pc;
    s.caller_pc = caller;
    s.mode = mode == 'k' ? hw::CpuMode::kKernel
             : mode == 'h' ? hw::CpuMode::kHypervisor
                           : hw::CpuMode::kUser;
    s.pid = pid;
    s.epoch = epoch;
    s.cycle = cycle;
    out.push_back(s);
    ++status_.valid;
    pos = nl + 1;
  }

  if (status_.corrupt) status_.salvaged = status_.valid;
}

template void SampleStreamParser::parse_into(std::string_view,
                                             std::vector<LoggedSample>&);
template void SampleStreamParser::parse_into(std::string_view,
                                             support::ArenaVector<LoggedSample>&);

std::vector<LoggedSample> SampleLogReader::read_checked(const os::Vfs& vfs,
                                                        const std::string& dir,
                                                        hw::EventKind event,
                                                        SampleLogReadStatus& status) {
  status = SampleLogReadStatus{};
  std::vector<LoggedSample> out;
  const auto contents = vfs.read(SampleLogWriter::path_for(dir, event));
  if (!contents) {
    status.missing = true;
    return out;
  }
  SampleStreamParser parser;
  parser.parse(*contents, out);
  status = parser.status();
  return out;
}

}  // namespace viprof::core
