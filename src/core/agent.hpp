// The VIProf VM agent (paper Section 3, "VM Agent").
//
// A library with hooks in the VM: the compile/recompile path logs the
// address, size and signature of each freshly compiled body into an
// in-memory code buffer; the GC move path only *flags* moved methods
// (logging from inside the collector would be a "significant performance
// hit"); at each epoch boundary (just before GC, and at VM shutdown) the
// agent writes a partial code map to disk, enqueues an epoch marker into the
// sample stream, and notifies the daemon.
//
// Every hook returns its simulated cycle cost, which the VM charges inside
// the agent's library code — so agent overhead shows up both in Fig. 2
// slowdowns and, under heavy sampling, in the profile itself.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/code_map.hpp"
#include "core/registration.hpp"
#include "core/sample_buffer.hpp"
#include "jvm/hooks.hpp"
#include "os/machine.hpp"
#include "support/fault.hpp"
#include "support/telemetry.hpp"

namespace viprof::core {

struct AgentConfig {
  /// Ablation ABL1: log GC moves immediately (with full entry construction
  /// inside the collector) instead of flagging. The paper rejects this.
  bool log_moves_immediately = false;

  /// Ablation ABL2: write a *full* map (every live body) at each epoch
  /// boundary instead of the paper's partial maps. Resolution then never
  /// needs the backward search, but map-writing cost scales with total
  /// compiled code instead of per-epoch churn.
  bool write_full_maps = false;

  hw::Cycles compile_hook_cost = 550;  // append to code buffer
  hw::Cycles move_flag_cost = 12;      // set a bit on the compiled method
  hw::Cycles move_log_cost = 380;      // full entry construction inside GC
  hw::Cycles map_write_base = 5'000;   // open/fsync-equivalent per epoch map
  hw::Cycles map_write_per_entry = 600;
  hw::Cycles registration_cost = 2'000;  // one-time VM registration

  /// Failed map writes: bounded retries, each charged inside the epoch
  /// boundary (the VM is already paused for GC, so retries must stay cheap
  /// and bounded — instrumentation cost is bounded even on failure paths).
  std::size_t map_write_retries = 2;
  hw::Cycles map_retry_cost = 8'000;

  std::string map_dir = "jit_maps";

  /// Where the memory-profiling agent (memprof::MemProfAgent, if attached)
  /// writes its epoch object maps. Rides along in the VmRegistration —
  /// there is exactly one registration per pid, so the VM agent announces
  /// both map directories. Empty = no object profiling.
  std::string obj_map_dir;

  /// Optional fault injector; also consulted for scheduled agent kills.
  support::FaultInjector* fault = nullptr;
};

struct AgentStats {
  std::uint64_t compiles_logged = 0;
  std::uint64_t moves_flagged = 0;
  std::uint64_t moves_logged = 0;
  std::uint64_t maps_written = 0;
  std::uint64_t map_entries_written = 0;
  hw::Cycles cost_cycles = 0;

  // Failure accounting.
  std::uint64_t map_write_errors = 0;  // rejected writes (before any retry)
  std::uint64_t map_write_retries = 0;
  std::uint64_t maps_torn = 0;     // map landed torn (reader will salvage)
  std::uint64_t maps_dropped = 0;  // all retries failed; epoch has no map
  std::uint64_t killed_epochs = 0; // epoch boundaries after the agent died
};

class VmAgent : public jvm::VmEventListener {
 public:
  VmAgent(os::Machine& machine, SampleBuffer& buffer, RegistrationTable& table,
          const AgentConfig& config = {});

  hw::Cycles on_vm_start(const jvm::VmStartInfo& info) override;
  hw::Cycles on_method_compiled(const jvm::MethodInfo& method,
                                const jvm::CodeObject& code) override;
  hw::Cycles on_method_moved(const jvm::MethodInfo& method, hw::Address old_address,
                             const jvm::CodeObject& code) override;
  hw::Cycles on_epoch_end(std::uint64_t epoch, bool final_epoch) override;
  const hw::ExecContext* agent_context() const override { return &context_; }

  const AgentStats& stats() const { return stats_; }
  const AgentConfig& config() const { return config_; }

  /// True once a scheduled kill fired: the library is gone from the VM
  /// process — no further maps are written and no markers are enqueued.
  bool killed() const { return dead_; }

 private:
  hw::Cycles write_map(std::uint64_t epoch);

  os::Machine* machine_;
  SampleBuffer* buffer_;
  RegistrationTable* table_;
  AgentConfig config_;
  AgentStats stats_;

  const jvm::Heap* heap_ = nullptr;
  hw::Pid pid_ = 0;
  bool dead_ = false;
  hw::ExecContext context_{};  // inside libviprofagent.so

  // Code buffer: bodies compiled since the last map write, plus bodies the
  // previous collection moved (flag mode) — exactly what a partial map holds.
  std::vector<jvm::CodeId> pending_;
  std::unordered_set<jvm::CodeId> pending_set_;
  std::unordered_map<jvm::CodeId, std::string> signatures_;

  // Self-telemetry handles (agent.* namespace, DESIGN.md §8).
  support::Counter* tele_compiles_ = nullptr;
  support::Counter* tele_moves_ = nullptr;
  support::Counter* tele_maps_written_ = nullptr;
  support::Counter* tele_map_entries_ = nullptr;
  support::Counter* tele_maps_dropped_ = nullptr;
  support::Counter* tele_map_errors_ = nullptr;
  support::LatencyHistogram* tele_map_cost_ = nullptr;     // cycles per map write
  support::LatencyHistogram* tele_map_entries_hist_ = nullptr;  // entries per map
};

}  // namespace viprof::core
