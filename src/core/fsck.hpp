// Integrity scan of an exported session tree — the library behind
// viprof_fsck (the e2fsck analogue for a sample tree).
//
// Scans every per-event sample log (record framing: sequence numbers +
// checksums) and every epoch code map (entry count + checksum trailer),
// reports findings through the self-telemetry registry (fsck.* counters,
// DESIGN.md §8) and classifies the whole tree:
//
//   kClean         — every artifact verified end to end;
//   kSalvaged      — damage found, but every damaged artifact yielded at
//                    least part of its content (degraded, usable);
//   kUnrecoverable — some damaged artifact yielded nothing usable (a sample
//                    log with no verifiable record, a map with no
//                    salvageable entry).
//
// The verdict values double as the viprof_fsck exit codes; usage errors
// exit with kFsckExitUsage.
#pragma once

#include <cstdint>
#include <string>

#include "os/vfs.hpp"
#include "support/telemetry.hpp"

namespace viprof::core {

enum class FsckVerdict : std::uint8_t { kClean = 0, kSalvaged = 1, kUnrecoverable = 2 };

inline const char* to_string(FsckVerdict v) {
  switch (v) {
    case FsckVerdict::kClean:         return "clean";
    case FsckVerdict::kSalvaged:      return "salvaged";
    case FsckVerdict::kUnrecoverable: return "unrecoverable";
  }
  return "?";
}

/// viprof_fsck exit codes: the verdict value verbatim, plus usage errors.
inline constexpr int kFsckExitClean = 0;
inline constexpr int kFsckExitSalvaged = 1;
inline constexpr int kFsckExitUnrecoverable = 2;
inline constexpr int kFsckExitUsage = 3;

struct FsckOptions {
  std::string samples_dir = "samples";
  /// Emit the recoverable subset into `out` (sample logs re-framed from
  /// their verified records, damaged maps rewritten as their salvaged
  /// prefix, everything else copied verbatim).
  bool write_recovery = false;
  /// Per-file findings appended to FsckReport::details.
  bool verbose = true;
};

struct FsckReport {
  FsckVerdict verdict = FsckVerdict::kClean;
  bool corrupt = false;  // any damage at all (verdict != kClean)

  // Sample logs.
  std::uint64_t logs_scanned = 0;
  std::uint64_t valid_records = 0;
  std::uint64_t salvaged_records = 0;
  std::uint64_t discarded_lines = 0;
  std::uint64_t missing_records = 0;
  std::uint64_t duplicate_records = 0;
  std::uint64_t dead_logs = 0;  // corrupt logs with nothing verifiable

  // Epoch code maps.
  std::uint64_t maps_intact = 0;
  std::uint64_t maps_truncated = 0;
  std::uint64_t map_entries_salvaged = 0;
  std::uint64_t dead_maps = 0;  // truncated maps with zero salvaged entries

  std::string details;  // per-file findings (verbose mode)
  std::string summary;  // one-line verdict summary

  /// Registry view of the findings above (fsck.* namespace), for
  /// viprof_stat and the tests.
  support::TelemetrySnapshot metrics;
};

/// Scans the tree in `in`. When opts.write_recovery, the recoverable subset
/// is written into `out` (must be non-null then). Findings are reported
/// through `telemetry` (fsck.* counters) and mirrored in the returned report.
FsckReport fsck_tree(const os::Vfs& in, os::Vfs* out, support::Telemetry& telemetry,
                     const FsckOptions& opts = {});

}  // namespace viprof::core
