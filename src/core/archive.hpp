// Profile archives: everything post-processing needs, as files.
//
// The real OProfile's post-processing runs *offline*: opreport re-reads the
// binaries, /proc-style range data and sample files from disk (oparchive
// bundles them). Our in-process Resolver takes the shortcut of consulting
// the live Machine; this module removes the shortcut. write_archive()
// serialises the resolution world — images, symbol tables, per-process
// VMAs, kernel/hypervisor ranges, VM registrations — into the VFS next to
// the sample logs and code maps, and ArchiveResolver reproduces the full
// resolution semantics from those files alone. The test suite asserts
// bit-identical attribution between the live and the archive resolver.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/code_map.hpp"
#include "core/registration.hpp"
#include "core/resolver.hpp"
#include "core/sample_log.hpp"
#include "os/machine.hpp"

namespace viprof::core {

/// Serialises the resolution world into `vfs` under `prefix` (one manifest
/// file; RVM.map / code maps / sample logs are already files).
void write_archive(const os::Machine& machine, const RegistrationTable& table,
                   os::Vfs& vfs, const std::string& prefix);

/// Pluggable provider of epoch code-map indexes, consulted on the JIT
/// resolution path in place of the resolver's internally loaded maps. The
/// continuous-profiling service supplies one per ingest batch: its indexes
/// live in a shared LRU cache keyed by (vm, epoch-ceiling) and are pinned
/// for the batch's lifetime, so a load-everything-up-front resolver would
/// be both stale (maps keep streaming in) and unbounded.
///
/// index_for() may return nullptr (no maps known for that pid yet); the
/// caller then takes the same path as an empty internal index, binning the
/// sample as unresolved rather than misattributing it.
class JitIndexSource {
 public:
  virtual ~JitIndexSource() = default;
  virtual const CodeMapIndex* index_for(hw::Pid pid, std::uint64_t epoch) const = 0;
};

/// Offline resolver: same attribution rules as core::Resolver, driven only
/// by files (the archive manifest plus the maps referenced from it).
class ArchiveResolver {
 public:
  /// Loads the manifest written by write_archive(); `vm_aware` selects
  /// VIProf vs stock-OProfile behaviour, as with the live resolver.
  /// `load_jit_maps = false` skips loading the epoch code maps — for
  /// callers that resolve through an external JitIndexSource instead.
  ArchiveResolver(const os::Vfs& vfs, const std::string& prefix, bool vm_aware,
                  bool load_jit_maps = true);

  Resolution resolve(const LoggedSample& sample) const;
  Resolution resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                        std::uint64_t epoch) const;

  /// As above, but JIT-heap PCs resolve through `jit` instead of the
  /// internally loaded maps; nullptr falls back to the internal maps.
  /// Byte-identical to the plain overloads when `jit` serves the same
  /// index contents.
  Resolution resolve(const LoggedSample& sample, const JitIndexSource* jit) const;
  Resolution resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                        std::uint64_t epoch, const JitIndexSource* jit) const;

  const std::vector<VmRegistration>& registrations() const { return registrations_; }

  std::size_t image_count() const { return images_.size(); }
  std::size_t process_count() const { return processes_.size(); }
  bool loaded() const { return loaded_; }

 private:
  struct ArchivedImage {
    std::string name;
    os::ImageKind kind = os::ImageKind::kExecutable;
    bool stripped = false;
    os::SymbolTable symbols;
  };
  struct ArchivedVma {
    hw::Address start = 0, end = 0;
    std::uint32_t image = 0;
    std::uint64_t file_offset = 0;
  };
  struct ArchivedProcess {
    std::string name;
    std::vector<ArchivedVma> vmas;  // sorted by start
  };
  struct Range {
    std::uint32_t image = 0;
    hw::Address base = 0;
    std::uint64_t size = 0;
    bool contains(hw::Address pc) const { return pc >= base && pc < base + size; }
  };

  const ArchivedVma* find_vma(const ArchivedProcess& proc, hw::Address pc) const;

  bool vm_aware_;
  bool loaded_ = false;
  std::vector<ArchivedImage> images_;
  std::unordered_map<hw::Pid, ArchivedProcess> processes_;
  std::optional<Range> kernel_;
  std::optional<Range> hypervisor_;
  std::vector<VmRegistration> registrations_;
  std::unordered_map<hw::Pid, os::SymbolTable> boot_maps_;
  std::unordered_map<hw::Pid, std::string> boot_labels_;
  std::unordered_map<hw::Pid, CodeMapIndex> jit_maps_;
};

}  // namespace viprof::core
