#include "core/rvm_map.hpp"

#include <string_view>

#include "support/str_scan.hpp"

namespace viprof::core {

os::SymbolTable parse_rvm_map(const std::string& contents) {
  os::SymbolTable table;
  const auto handle = [&table](std::string_view line) {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::string_view name;
    if (!support::scan_hex64(line, offset) || !support::scan_u64(line, size) ||
        !support::scan_token(line, name)) {
      return;  // not a map line; skipped, like every other malformed line
    }
    // The on-disk symbol field is capped at 511 chars; longer names are
    // truncated, not rejected — a boot map is trusted input, unlike the
    // checksummed epoch maps.
    if (name.size() > 511) name = name.substr(0, 511);
    table.add(std::string(name), offset, size);
  };
  support::LineCursor cursor(contents);
  std::string_view line;
  while (cursor.next(line)) handle(line);
  // The boot map has no framing to verify, so a final line without a
  // newline is still a line.
  if (!cursor.tail().empty()) handle(cursor.tail());
  return table;
}

}  // namespace viprof::core
