// Epoch-keyed JIT code maps (paper Sections 3.1-3.3).
//
// The VM agent writes one *partial* map per execution epoch, just before the
// GC that closes it: methods compiled or recompiled during the epoch, plus
// methods the previous collection moved. Post-processing resolves a sample
// against the map of the sample's epoch and walks *backwards* through older
// maps until it finds the first map containing an address range that covers
// the PC — guaranteeing attribution to "the most recently compiled — or
// moved — method to occupy that address space".
//
// Crash consistency: the file format carries an entry count in the header
// and an FNV-1a checksum trailer. A map that lost its tail (the VM died
// mid-write, the disk tore the page) is detected, a verified prefix of its
// entries is salvaged, and the map is marked *truncated*. The backward
// search refuses to step past a missing or truncated map it cannot decide
// on — such samples become explicit `unresolved.*` outcomes instead of
// being silently attributed to a stale neighbour.
//
// Query cost (DESIGN.md §9): the literal per-sample backward walk is
// O(epochs · log entries). The index therefore flattens the maps once per
// load into a merged interval view — every address range annotated with the
// epochs at which its occupant changed — so resolve()/lookup() are a single
// O(log n) probe. Gap and truncation positions are precomputed alongside,
// keeping kMissingEpochMap/kTruncatedMap outcomes bit-identical to the
// walk; resolve_walkback()/lookup_walkback() keep the original algorithms
// as the property-test oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hw/types.hpp"
#include "os/vfs.hpp"

namespace viprof::core {

struct CodeMapEntry {
  hw::Address address = 0;
  std::uint64_t size = 0;
  std::string symbol;  // fully qualified method name

  bool contains(hw::Address pc) const { return pc >= address && pc < address + size; }
};

/// One epoch's map: serialisation to/from the VFS file format.
struct CodeMapFile {
  std::uint64_t epoch = 0;
  /// Known-incomplete map: a salvaged prefix of a damaged file (set by
  /// salvage(), preserved across re-serialisation so a recovered tree
  /// stays honest about what it lost).
  bool truncated = false;
  std::vector<CodeMapEntry> entries;

  std::string serialize() const;

  /// Strict parse: header, declared entry count and checksum trailer must
  /// all verify. nullopt on any damage (use salvage() to recover).
  static std::optional<CodeMapFile> parse(const std::string& contents);

  /// Tolerant parse for damaged files: recovers the longest verifiable
  /// prefix of entries. `epoch_hint` (from the file name) is used when the
  /// header itself is unreadable. (Defined after the class: it embeds one.)
  struct Recovery;
  static Recovery salvage(const std::string& contents, std::uint64_t epoch_hint);

  /// Conventional path for the map of `epoch` under `dir`.
  static std::string path_for(const std::string& dir, hw::Pid pid, std::uint64_t epoch);

  /// Epoch encoded in a path_for-style file name, or nullopt.
  static std::optional<std::uint64_t> epoch_from_path(const std::string& path);
};

struct CodeMapFile::Recovery {
  bool intact = false;     // full parse with matching count and checksum
  bool header_ok = false;  // the epoch header line was readable
  std::uint64_t entries_expected = 0;  // from the header; 0 if unreadable
  CodeMapFile file;                    // truncated flag set when !intact
};

/// Why a strict JIT lookup produced no symbol.
enum class JitLookupMiss : std::uint8_t {
  kNone,            // hit
  kNoMaps,          // no maps loaded at all
  kNotFound,        // every map down to epoch 0 intact, pc in none of them
  kMissingEpochMap, // an epoch on the search path has no map (lost write)
  kTruncatedMap,    // an epoch on the search path has only a salvaged prefix
};

inline const char* to_string(JitLookupMiss m) {
  switch (m) {
    case JitLookupMiss::kNone:            return "hit";
    case JitLookupMiss::kNoMaps:          return "no-maps";
    case JitLookupMiss::kNotFound:        return "not-found";
    case JitLookupMiss::kMissingEpochMap: return "missing-map";
    case JitLookupMiss::kTruncatedMap:    return "truncated-map";
  }
  return "?";
}

/// The post-processing index over all epoch maps of one VM.
///
/// Thread-safety contract: after the flattened view is built (prepare(), or
/// lazily on first query), any number of threads may call the const query
/// methods concurrently. add() and load() are exclusive — they must not
/// race with queries or each other.
class CodeMapIndex {
 public:
  CodeMapIndex() = default;
  CodeMapIndex(CodeMapIndex&& other) noexcept;
  CodeMapIndex& operator=(CodeMapIndex&& other) noexcept;
  CodeMapIndex(const CodeMapIndex&) = delete;
  CodeMapIndex& operator=(const CodeMapIndex&) = delete;

  struct LoadStats {
    std::uint64_t maps_loaded = 0;     // files found (intact or salvaged)
    std::uint64_t maps_intact = 0;
    std::uint64_t maps_truncated = 0;  // damaged: prefix salvaged
    std::uint64_t entries_loaded = 0;
    std::uint64_t entries_salvaged = 0;  // entries recovered from damaged maps
  };

  /// Loads every map file under `dir` for `pid` from the VFS, salvaging
  /// damaged files instead of aborting on them. Builds the flattened view.
  LoadStats load(const os::Vfs& vfs, const std::string& dir, hw::Pid pid);

  /// Adds one parsed map (tests construct indices directly). Two files
  /// claiming the same epoch — e.g. two unreadable-header files salvaged
  /// under the same file-name hint — are *merged* and the epoch marked
  /// truncated: with provenance ambiguous, absence from the merged map must
  /// not prove anything.
  void add(CodeMapFile file);

  struct Hit {
    std::string symbol;
    std::uint64_t found_in_epoch = 0;
    std::uint32_t maps_searched = 0;  // 1 = found in the sample's own epoch
    hw::Address address = 0;          // body start (as of that epoch)
    std::uint64_t size = 0;
  };

  /// Backward search from `epoch` down to 0 over whatever maps exist;
  /// ignores gaps and truncation. This is the paper's original algorithm —
  /// post-processing uses lookup() below, which refuses to guess.
  std::optional<Hit> resolve(hw::Address pc, std::uint64_t epoch) const;

  /// Crash-aware backward search: walks epochs `epoch`, `epoch`-1, ... 0
  /// contiguously. A missing or truncated map that does not contain `pc`
  /// stops the walk with an explicit miss reason, because an older map
  /// could attribute the sample to a method that had since been recompiled
  /// or moved — the one lie VIProf must never tell.
  struct Lookup {
    std::optional<Hit> hit;
    JitLookupMiss miss = JitLookupMiss::kNone;
  };
  Lookup lookup(hw::Address pc, std::uint64_t epoch) const;

  /// Literal epoch-by-epoch implementations of resolve()/lookup(), kept as
  /// the equivalence oracle for the flattened view (and for benchmarking
  /// the flattening win). Same results, O(epochs · log n) per call.
  std::optional<Hit> resolve_walkback(hw::Address pc, std::uint64_t epoch) const;
  Lookup lookup_walkback(hw::Address pc, std::uint64_t epoch) const;

  /// Builds the flattened view now (idempotent, thread-safe). Queries call
  /// it lazily; load() calls it eagerly so post-processing threads never
  /// contend on the build.
  void prepare() const;

  /// True if `epoch` has a loaded map that is marked truncated.
  bool epoch_truncated(std::uint64_t epoch) const {
    auto it = maps_.find(epoch);
    return it != maps_.end() && it->second.truncated;
  }

  std::size_t map_count() const { return maps_.size(); }
  std::uint64_t total_entries() const { return total_entries_; }
  std::uint64_t truncated_count() const { return truncated_count_; }

  /// Highest epoch with a loaded map.
  std::uint64_t max_epoch() const;

 private:
  struct EpochMap {
    std::vector<CodeMapEntry> entries;  // address-sorted
    bool truncated = false;
  };

  /// One occupant change of an elementary address interval: from `epoch`
  /// on (until a newer version of the same interval), samples in the
  /// interval attribute to `entry`.
  struct Version {
    std::uint64_t epoch = 0;
    std::uint32_t ord = 0;  // index of `epoch` among loaded map epochs
    const CodeMapEntry* entry = nullptr;
  };

  const CodeMapEntry* find_in(const EpochMap& map, hw::Address pc) const;
  void build_flat() const;
  /// Newest occupant of `pc` among maps with epoch <= `epoch`, or nullptr.
  const Version* flat_find(hw::Address pc, std::uint64_t epoch) const;

  std::map<std::uint64_t, EpochMap> maps_;
  std::uint64_t total_entries_ = 0;
  std::uint64_t truncated_count_ = 0;

  // ---- Flattened view (derived; rebuilt after add(), shared by readers).
  // Entry pointers reference maps_ node storage, which is stable under
  // std::map moves, so a prepared index can be moved without rebuilding.
  static constexpr std::uint64_t kNoGap = ~0ull;  // epochs are < 2^64-1 here

  mutable std::atomic<bool> flat_ready_{false};
  mutable std::mutex flat_mu_;
  mutable std::vector<hw::Address> bounds_;   // elementary interval borders
  mutable std::vector<std::size_t> slot_of_;  // CSR offsets into versions_
  mutable std::vector<Version> versions_;     // per interval, epoch-ascending
  mutable std::vector<std::uint64_t> epochs_;        // sorted map epochs
  mutable std::vector<std::uint64_t> trunc_epochs_;  // sorted truncated epochs
  /// Per loaded epoch: newest integer epoch <= it with *no* map (kNoGap if
  /// the maps run contiguously down to 0).
  mutable std::vector<std::uint64_t> gap_below_;
};

}  // namespace viprof::core
