// Epoch-keyed JIT code maps (paper Sections 3.1-3.3).
//
// The VM agent writes one *partial* map per execution epoch, just before the
// GC that closes it: methods compiled or recompiled during the epoch, plus
// methods the previous collection moved. Post-processing resolves a sample
// against the map of the sample's epoch and walks *backwards* through older
// maps until it finds the first map containing an address range that covers
// the PC — guaranteeing attribution to "the most recently compiled — or
// moved — method to occupy that address space".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hw/types.hpp"
#include "os/vfs.hpp"

namespace viprof::core {

struct CodeMapEntry {
  hw::Address address = 0;
  std::uint64_t size = 0;
  std::string symbol;  // fully qualified method name

  bool contains(hw::Address pc) const { return pc >= address && pc < address + size; }
};

/// One epoch's map: serialisation to/from the VFS file format.
struct CodeMapFile {
  std::uint64_t epoch = 0;
  std::vector<CodeMapEntry> entries;

  std::string serialize() const;
  static std::optional<CodeMapFile> parse(const std::string& contents);

  /// Conventional path for the map of `epoch` under `dir`.
  static std::string path_for(const std::string& dir, hw::Pid pid, std::uint64_t epoch);
};

/// The post-processing index over all epoch maps of one VM.
class CodeMapIndex {
 public:
  /// Loads every map file under `dir` for `pid` from the VFS.
  void load(const os::Vfs& vfs, const std::string& dir, hw::Pid pid);

  /// Adds one parsed map (tests construct indices directly).
  void add(CodeMapFile file);

  struct Hit {
    std::string symbol;
    std::uint64_t found_in_epoch = 0;
    std::uint32_t maps_searched = 0;  // 1 = found in the sample's own epoch
    hw::Address address = 0;          // body start (as of that epoch)
    std::uint64_t size = 0;
  };

  /// Backward search from `epoch` down to 0.
  std::optional<Hit> resolve(hw::Address pc, std::uint64_t epoch) const;

  std::size_t map_count() const { return maps_.size(); }
  std::uint64_t total_entries() const { return total_entries_; }

  /// Highest epoch with a loaded map.
  std::uint64_t max_epoch() const;

 private:
  // epoch -> address-sorted entries.
  std::map<std::uint64_t, std::vector<CodeMapEntry>> maps_;
  std::uint64_t total_entries_ = 0;
};

}  // namespace viprof::core
