#include "core/resolver.hpp"

#include "core/rvm_map.hpp"
#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::core {

namespace {

constexpr const char* kNoSymbols = "(no symbols)";

}  // namespace

Resolver::Resolver(const os::Machine& machine, const RegistrationTable& table,
                   bool vm_aware)
    : machine_(&machine), table_(&table), vm_aware_(vm_aware) {
  support::Telemetry& tele = machine_->telemetry();
  tele_jit_resolved_ = &tele.counter("resolver.jit.resolved");
  tele_jit_unresolved_ = &tele.counter("resolver.jit.unresolved");
  tele_missing_map_ = &tele.counter("resolver.unresolved.missing_map");
  tele_truncated_map_ = &tele.counter("resolver.unresolved.truncated_map");
  tele_walkback_ = &tele.histogram("resolver.walkback.depth", 0, 1, 32);
}

void Resolver::load() {
  if (!vm_aware_) {
    loaded_ = true;
    return;
  }
  for (const VmRegistration& reg : table_->all()) {
    if (!reg.boot_map_path.empty()) {
      if (const auto contents = machine_->vfs().read(reg.boot_map_path)) {
        boot_maps_[reg.pid] = parse_rvm_map(*contents);
        const auto slash = reg.boot_map_path.rfind('/');
        boot_labels_[reg.pid] =
            slash == std::string::npos ? reg.boot_map_path
                                       : reg.boot_map_path.substr(slash + 1);
      }
    }
    CodeMapIndex index;
    index.load(machine_->vfs(), reg.jit_map_dir, reg.pid);
    jit_maps_[reg.pid] = std::move(index);
  }
  loaded_ = true;
}

const CodeMapIndex* Resolver::code_maps(hw::Pid pid) const {
  auto it = jit_maps_.find(pid);
  return it == jit_maps_.end() ? nullptr : &it->second;
}

Resolution Resolver::resolve(const LoggedSample& s) const {
  return resolve_pc(s.pc, s.mode, s.pid, s.epoch);
}

Resolution Resolver::resolve(const LoggedSample& s, ResolveStats& stats) const {
  return resolve_pc(s.pc, s.mode, s.pid, s.epoch, stats);
}

Resolution Resolver::resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                                std::uint64_t epoch) const {
  ResolveStats stats;
  Resolution out = resolve_pc(pc, mode, pid, epoch, stats);
  fold(stats);
  return out;
}

void Resolver::fold(const ResolveStats& stats) const {
  jit_resolved_.fetch_add(stats.jit_resolved, std::memory_order_relaxed);
  jit_unresolved_.fetch_add(stats.jit_unresolved, std::memory_order_relaxed);
  backward_steps_.fetch_add(stats.backward_steps, std::memory_order_relaxed);
  unresolved_missing_map_.fetch_add(stats.unresolved_missing_map,
                                    std::memory_order_relaxed);
  unresolved_truncated_map_.fetch_add(stats.unresolved_truncated_map,
                                      std::memory_order_relaxed);
}

Resolution Resolver::resolve_pc(hw::Address pc, hw::CpuMode mode, hw::Pid pid,
                                std::uint64_t epoch, ResolveStats& stats) const {
  VIPROF_CHECK(loaded_);
  Resolution out;

  const auto& hyp = machine_->hypervisor();
  if (hyp && (mode == hw::CpuMode::kHypervisor || hyp->contains(pc))) {
    out.domain = SampleDomain::kHypervisor;
    const os::Image& ximg = machine_->registry().get(hyp->image);
    out.image = ximg.name();
    const auto sym = ximg.symbols().find(pc - hyp->base);
    out.symbol = sym ? sym->name : kNoSymbols;
    if (sym) {
      out.symbol_base = hyp->base + sym->offset;
      out.symbol_size = sym->size;
    }
    return out;
  }

  if (mode == hw::CpuMode::kKernel || machine_->kernel().contains(pc)) {
    out.domain = SampleDomain::kKernel;
    const os::Image& kimg = machine_->registry().get(machine_->kernel().image());
    out.image = kimg.name();
    const auto sym = kimg.symbols().find(machine_->kernel().offset_of(pc));
    out.symbol = sym ? sym->name : kNoSymbols;
    if (sym) {
      out.symbol_base = machine_->kernel().base() + sym->offset;
      out.symbol_size = sym->size;
    }
    return out;
  }

  // Resolver runs offline but reads the same process maps the daemon saw.
  const os::Process* proc = machine_->find_process(pid);
  if (proc == nullptr) {
    out.domain = SampleDomain::kUnknown;
    out.image = "unknown-pid-" + std::to_string(pid);
    out.symbol = kNoSymbols;
    return out;
  }

  const auto vma = proc->address_space().find(pc);
  if (!vma) {
    out.domain = SampleDomain::kUnknown;
    out.image = "unmapped";
    out.symbol = kNoSymbols;
    return out;
  }

  const os::Image& img = machine_->registry().get(vma->image);
  const std::uint64_t offset = vma->file_offset + (pc - vma->start);

  switch (img.kind()) {
    case os::ImageKind::kBootImage: {
      if (vm_aware_) {
        auto bm = boot_maps_.find(pid);
        if (bm != boot_maps_.end()) {
          out.domain = SampleDomain::kBoot;
          out.image = boot_labels_.at(pid);
          const auto sym = bm->second.find(offset);
          out.symbol = sym ? sym->name : kNoSymbols;
          if (sym) {
            out.symbol_base = vma->start - vma->file_offset + sym->offset;
            out.symbol_size = sym->size;
          }
          return out;
        }
      }
      out.domain = SampleDomain::kBoot;
      out.image = img.name();  // opaque blob: RVM.code.image / CLR.native.image
      out.symbol = kNoSymbols;
      return out;
    }
    case os::ImageKind::kAnon: {
      if (vm_aware_) {
        if (const VmRegistration* reg = table_->find_heap(pid, pc)) {
          out.domain = SampleDomain::kJit;
          out.image = "JIT.App";
          auto jm = jit_maps_.find(reg->pid);
          const CodeMapIndex::Lookup lk =
              jm != jit_maps_.end() ? jm->second.lookup(pc, epoch)
                                    : CodeMapIndex::Lookup{std::nullopt,
                                                           JitLookupMiss::kNoMaps};
          if (lk.hit) {
            out.symbol = lk.hit->symbol;
            out.maps_searched = lk.hit->maps_searched;
            out.symbol_base = lk.hit->address;
            out.symbol_size = lk.hit->size;
            stats.backward_steps += lk.hit->maps_searched;
            ++stats.jit_resolved;
            tele_jit_resolved_->inc();
            tele_walkback_->add(static_cast<double>(lk.hit->maps_searched));
            return out;
          }
          ++stats.jit_unresolved;
          tele_jit_unresolved_->inc();
          switch (lk.miss) {
            case JitLookupMiss::kMissingEpochMap:
              ++stats.unresolved_missing_map;
              tele_missing_map_->inc();
              out.symbol = kUnresolvedMissingMap;
              break;
            case JitLookupMiss::kTruncatedMap:
              ++stats.unresolved_truncated_map;
              tele_truncated_map_->inc();
              out.symbol = kUnresolvedTruncatedMap;
              break;
            default:
              out.symbol = kUnknownJit;
              break;
          }
          return out;
        }
      }
      out.domain = SampleDomain::kAnon;
      out.image = "anon (range:" + support::hex(vma->start) + "-" +
                  support::hex(vma->end) + ")," + proc->name();
      out.symbol = kNoSymbols;
      return out;
    }
    default: {
      out.domain = SampleDomain::kImage;
      out.image = img.name();
      if (img.stripped()) {
        out.symbol = kNoSymbols;
        return out;
      }
      const auto sym = img.symbols().find(offset);
      out.symbol = sym ? sym->name : kNoSymbols;
      if (sym) {
        out.symbol_base = vma->start - vma->file_offset + sym->offset;
        out.symbol_size = sym->size;
      }
      return out;
    }
  }
}

}  // namespace viprof::core
