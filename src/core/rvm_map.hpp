// Jikes-style boot-image method map ("RVM.map") parsing, shared by the
// live Resolver and the offline ArchiveResolver.
//
// Each line is "offset-hex size-dec symbol"; anything else (comments, blank
// lines, junk) is skipped, matching the tolerance of the real tool, which
// must digest maps produced by several RVM builds. The file is scanned in a
// single pass (support/str_scan.hpp) — this parse is on the post-processing
// startup path and is measured by micro_resolve's BM_RvmMapParse.
#pragma once

#include <string>

#include "os/symbol_table.hpp"

namespace viprof::core {

os::SymbolTable parse_rvm_map(const std::string& contents);

}  // namespace viprof::core
