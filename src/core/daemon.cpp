#include "core/daemon.hpp"

#include "support/backoff.hpp"
#include "support/check.hpp"

namespace viprof::core {

Daemon::Daemon(os::Machine& machine, SampleBuffer& buffer, const RegistrationTable& table,
               const DaemonConfig& config)
    : machine_(&machine),
      buffer_(&buffer),
      table_(&table),
      config_(config),
      log_(machine.vfs(), config.sample_dir) {
  // The daemon is a real user process ("oprofiled") with its own image, so
  // heavy profiling shows the profiler in its own reports.
  os::Image& img =
      machine_->registry().create("oprofiled", os::ImageKind::kExecutable, 64 * 1024);
  img.symbols().add("opd_process_samples", 0, 8192);
  img.symbols().add("opd_sfile_log", 8192, 4096);
  img.symbols().add("opd_anon_match", 12288, 4096);
  os::Process& proc = machine_->spawn("oprofiled");
  const os::Vma vma = machine_->loader().load_executable(proc, img.id());
  context_ = hw::ExecContext{vma.start, 8192, hw::CpuMode::kUser, proc.pid()};
  pattern_.base = vma.start + img.size();
  pattern_.working_set = 64 * 1024;
  pattern_.stride = 64;
  pattern_.random_frac = 0.2;
  pattern_.accesses_per_op = 0.5;
  log_.set_spill_capacity(config_.spill_capacity_bytes);

  support::Telemetry& tele = machine_->telemetry();
  tele_drained_ = &tele.counter("daemon.drained");
  tele_wakeups_ = &tele.counter("daemon.wakeups");
  tele_flushes_ = &tele.counter("daemon.flushes");
  tele_jit_samples_ = &tele.counter("daemon.samples.jit");
  tele_obj_samples_ = &tele.counter("daemon.samples.obj");
  tele_epoch_markers_ = &tele.counter("daemon.epoch_markers");
  tele_flush_errors_ = &tele.counter("daemon.flush.write_errors");
  tele_flush_torn_ = &tele.counter("daemon.flush.torn_writes");
  tele_flush_retries_ = &tele.counter("daemon.flush.retries");
  tele_spill_dropped_ = &tele.counter("daemon.spill.dropped_records");
  tele_crashes_ = &tele.counter("daemon.crashes");
  tele_backlog_ = &tele.histogram("daemon.drain.backlog", 0, 64, 64);
  tele_drain_cost_ = &tele.histogram("daemon.drain.cost_cycles", 0, 25'000, 64);
  tele_flush_cost_ = &tele.histogram("daemon.flush.retry_cycles", 0, 50'000, 32);
}

std::optional<os::WorkChunk> Daemon::next_work(hw::Cycles now) {
  if (!dead_ && config_.fault != nullptr &&
      config_.fault->should_kill(support::FaultComponent::kDaemon, now)) {
    crash(now);
  }
  if (dead_) return std::nullopt;

  const std::size_t backlog = buffer_->size();
  if (backlog == 0) return std::nullopt;
  const bool period_hit = now - last_drain_ >= config_.drain_period;
  if (backlog < config_.drain_watermark && !period_hit) return std::nullopt;

  hw::Cycles cost = config_.wakeup_cost;
  ++stats_.wakeups;
  tele_wakeups_->inc();
  tele_backlog_->add(static_cast<double>(backlog));
  std::size_t processed = 0;
  while (processed < config_.batch) {
    const auto sample = buffer_->pop();
    if (!sample) break;
    cost += process(*sample);
    ++processed;
  }
  cost += flush_logs();
  if (buffer_->empty()) last_drain_ = now;
  stats_.cost_cycles += cost;
  tele_drained_->inc(processed);
  tele_drain_cost_->add(static_cast<double>(cost));
  machine_->telemetry().spans().record("daemon.drain", "daemon", now, now + cost);

  os::WorkChunk chunk;
  chunk.context = context_;
  chunk.cycles = cost;
  chunk.ops = std::max<std::uint64_t>(1, cost / 2);  // ~2 cycles per daemon op
  chunk.pattern = pattern_;
  return chunk;
}

hw::Cycles Daemon::flush_logs() {
  auto account = [this](const LogFlushResult& res) {
    stats_.flush_write_errors += res.write_errors;
    stats_.flush_torn_writes += res.torn_writes;
    stats_.spill_dropped_records += res.records_dropped;
    tele_flush_errors_->inc(res.write_errors);
    tele_flush_torn_->inc(res.torn_writes);
    tele_spill_dropped_->inc(res.records_dropped);
  };
  tele_flushes_->inc();
  LogFlushResult res = log_.flush();
  account(res);

  // Shared retry policy (support::Backoff): doubling delays, no jitter —
  // the exact schedule the daemon has always used, now driven by the one
  // tested implementation every retry path shares.
  support::BackoffConfig policy;
  policy.initial = config_.flush_retry_cost;
  policy.multiplier = 2.0;
  policy.max_attempts = config_.flush_retries;
  support::Backoff backoff(policy);
  hw::Cycles retry_cost = 0;
  while (!res.fully_flushed) {
    const auto delay = backoff.next();
    if (!delay) break;
    // The daemon sleeps out the backoff and re-issues the write; both the
    // wait and the rewrite are charged as daemon time.
    retry_cost += *delay;
    ++stats_.flush_retries;
    tele_flush_retries_->inc();
    res = log_.flush();
    account(res);
  }
  if (retry_cost > 0) tele_flush_cost_->add(static_cast<double>(retry_cost));
  return retry_cost;
}

void Daemon::final_flush() {
  if (dead_) return;  // a crashed daemon drains nothing
  while (const auto sample = buffer_->pop()) process(*sample);
  flush_logs();
}

void Daemon::crash(hw::Cycles now) {
  if (dead_) return;
  dead_ = true;
  ++stats_.crashes;
  tele_crashes_->inc();
  machine_->telemetry().spans().instant("daemon.crash", "daemon", now);
  stats_.crash_lost_records += log_.discard_pending();
  last_drain_ = now;
}

void Daemon::restart(hw::Cycles now) {
  if (!dead_) return;
  dead_ = false;
  ++stats_.restarts;
  last_drain_ = now;
}

hw::Cycles Daemon::process(const Sample& sample) {
  ++stats_.drained;
  if (sample.kind == RecordKind::kEpochMarker) {
    ++stats_.epoch_markers;
    tele_epoch_markers_->inc();
    // Epoch `sample.epoch` of this VM closed; its subsequent samples belong
    // to the next one. Other VMs' epoch counters are untouched.
    epoch_by_pid_[sample.pid] = sample.epoch + 1;
    return config_.per_sample_kernel;  // marker handling is trivial
  }

  LoggedSample out;
  out.pc = sample.pc;
  out.caller_pc = sample.caller_pc;
  out.mode = sample.mode;
  out.pid = sample.pid;
  out.cycle = sample.cycle;
  // Logging-time epoch assignment (paper Section 3.1): every sample carries
  // the epoch of its VM current at the time it is logged. Stock OProfile
  // has no markers, so its samples all stay in epoch 0.
  out.epoch = current_epoch(sample.pid);

  hw::Cycles cost = 0;
  const auto& hyp = machine_->hypervisor();
  if (sample.mode == hw::CpuMode::kHypervisor || (hyp && hyp->contains(sample.pc))) {
    // XenoProf extension: hypervisor-ring samples match the Xen range first.
    ++stats_.hypervisor_samples;
    cost = config_.per_sample_kernel;
  } else if (sample.mode == hw::CpuMode::kKernel || machine_->kernel().contains(sample.pc)) {
    ++stats_.kernel_samples;
    cost = config_.per_sample_kernel;
  } else {
    // User-space: find the backing VMA.
    const os::Process* proc = machine_->find_process(sample.pid);
    bool anon = true;
    if (proc != nullptr) {
      if (const auto vma = proc->address_space().find(sample.pc)) {
        anon = machine_->registry().get(vma->image).kind() == os::ImageKind::kAnon;
      }
    }
    if (!anon) {
      ++stats_.image_samples;
      cost = config_.per_sample_image;
    } else if (config_.vm_aware &&
               table_->find_heap(sample.pid, sample.pc) != nullptr) {
      // VIProf path: the registered-heap check replaces the anon machinery.
      // Object-miss samples carry a *data* address inside the same heap;
      // the same range check admits them, but they are tallied apart — the
      // memory profiler resolves them against object maps, not code maps.
      if (sample.event == hw::EventKind::kObjDmiss) {
        ++stats_.obj_samples;
        tele_obj_samples_->inc();
      } else {
        ++stats_.jit_samples;
        tele_jit_samples_->inc();
      }
      cost = config_.per_sample_jit;
    } else {
      ++stats_.anon_samples;
      cost = config_.per_sample_anon;
    }
  }
  log_.append(sample.event, out);
  return cost;
}

}  // namespace viprof::core
