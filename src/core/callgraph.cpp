#include "core/callgraph.hpp"

#include <algorithm>

#include "support/format.hpp"

namespace viprof::core {

void CallGraph::add(const LoggedSample& sample) {
  if (sample.caller_pc == 0) return;
  ++samples_;
  const Resolution callee = resolver_->resolve(sample);
  // The caller is user code in the same process (one-level unwind).
  const Resolution caller =
      resolver_->resolve_pc(sample.caller_pc, hw::CpuMode::kUser, sample.pid, sample.epoch);
  for (CallArc& arc : arcs_) {
    if (arc.caller_symbol == caller.symbol && arc.callee_symbol == callee.symbol &&
        arc.caller_image == caller.image && arc.callee_image == callee.image) {
      ++arc.count;
      return;
    }
  }
  CallArc arc;
  arc.caller_image = caller.image;
  arc.caller_symbol = caller.symbol;
  arc.callee_image = callee.image;
  arc.callee_symbol = callee.symbol;
  arc.caller_domain = caller.domain;
  arc.callee_domain = callee.domain;
  arc.count = 1;
  arcs_.push_back(std::move(arc));
}

std::vector<CallArc> CallGraph::ranked() const {
  std::vector<CallArc> out = arcs_;
  std::stable_sort(out.begin(), out.end(),
                   [](const CallArc& a, const CallArc& b) { return a.count > b.count; });
  return out;
}

std::vector<CallArc> CallGraph::cross_layer_arcs() const {
  std::vector<CallArc> out;
  for (const CallArc& arc : ranked())
    if (arc.crosses_layers()) out.push_back(arc);
  return out;
}

std::string CallGraph::render(std::size_t top_n) const {
  support::TextTable table({"Samples", "Caller", "->", "Callee"});
  std::size_t emitted = 0;
  for (const CallArc& arc : ranked()) {
    if (emitted >= top_n) break;
    table.add_row({std::to_string(arc.count),
                   arc.caller_image + ":" + arc.caller_symbol, "->",
                   arc.callee_image + ":" + arc.callee_symbol});
    ++emitted;
  }
  return table.render();
}

}  // namespace viprof::core
