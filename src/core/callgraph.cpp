#include "core/callgraph.hpp"

#include <algorithm>

#include "support/format.hpp"

namespace viprof::core {

std::size_t CallGraph::arc_slot(const CallArc& like) {
  std::string key;
  key.reserve(like.caller_image.size() + like.caller_symbol.size() +
              like.callee_image.size() + like.callee_symbol.size() + 3);
  key += like.caller_image;
  key += '\0';
  key += like.caller_symbol;
  key += '\0';
  key += like.callee_image;
  key += '\0';
  key += like.callee_symbol;
  const auto [it, inserted] = index_.try_emplace(std::move(key), arcs_.size());
  if (inserted) {
    CallArc arc = like;
    arc.count = 0;
    arcs_.push_back(std::move(arc));
  }
  return it->second;
}

void CallGraph::add(const LoggedSample& sample) {
  if (sample.caller_pc == 0) return;
  const Resolution callee = resolver_->resolve(sample);
  // The caller is user code in the same process (one-level unwind).
  const Resolution caller =
      resolver_->resolve_pc(sample.caller_pc, hw::CpuMode::kUser, sample.pid, sample.epoch);
  add_resolved(caller, callee);
}

void CallGraph::add_resolved(const Resolution& caller, const Resolution& callee) {
  add_resolved(caller, callee, 1);
}

void CallGraph::add_resolved(const Resolution& caller, const Resolution& callee,
                             std::uint64_t count) {
  bump_arc(arc_index(caller, callee), count);
}

std::size_t CallGraph::arc_index(const Resolution& caller, const Resolution& callee) {
  CallArc like;
  like.caller_image = caller.image;
  like.caller_symbol = caller.symbol;
  like.callee_image = callee.image;
  like.callee_symbol = callee.symbol;
  like.caller_domain = caller.domain;
  like.callee_domain = callee.domain;
  return arc_slot(like);
}

void CallGraph::add_arc(const CallArc& arc) {
  arcs_[arc_slot(arc)].count += arc.count;
  samples_ += arc.count;
}

void CallGraph::merge(const CallGraph& other) {
  samples_ += other.samples_;
  for (const CallArc& src : other.arcs_) {
    arc_for(src).count += src.count;
  }
}

std::vector<CallArc> CallGraph::ranked() const {
  std::vector<CallArc> out = arcs_;
  std::stable_sort(out.begin(), out.end(),
                   [](const CallArc& a, const CallArc& b) { return a.count > b.count; });
  return out;
}

std::vector<CallArc> CallGraph::cross_layer_arcs() const {
  std::vector<CallArc> out;
  for (const CallArc& arc : ranked())
    if (arc.crosses_layers()) out.push_back(arc);
  return out;
}

std::string CallGraph::render(std::size_t top_n) const {
  support::TextTable table({"Samples", "Caller", "->", "Callee"});
  std::size_t emitted = 0;
  for (const CallArc& arc : ranked()) {
    if (emitted >= top_n) break;
    table.add_row({std::to_string(arc.count),
                   arc.caller_image + ":" + arc.caller_symbol, "->",
                   arc.callee_image + ":" + arc.callee_symbol});
    ++emitted;
  }
  return table.render();
}

}  // namespace viprof::core
