// The sample record that crosses the NMI → daemon boundary.
//
// Matches what OProfile's kernel module captures per counter overflow, plus
// VIProf's epoch-marker records: when the VM agent writes a code map at an
// epoch boundary it enqueues a marker into the same stream, so the daemon
// learns epoch transitions *in order* with the samples they delimit.
#pragma once

#include <cstdint>

#include "hw/cpu.hpp"
#include "hw/event.hpp"
#include "hw/types.hpp"

namespace viprof::core {

enum class RecordKind : std::uint8_t {
  kSample,       // counter overflow: pc + event
  kEpochMarker,  // VM agent closed an epoch (code map written)
};

struct Sample {
  RecordKind kind = RecordKind::kSample;
  hw::EventKind event = hw::EventKind::kGlobalPowerEvents;
  hw::Address pc = 0;
  hw::Address caller_pc = 0;
  hw::CpuMode mode = hw::CpuMode::kUser;
  hw::Pid pid = 0;
  std::uint64_t cycle = 0;
  std::uint64_t epoch = 0;  // marker records: the epoch that just closed

  static Sample from_context(const hw::SampleContext& sc) {
    Sample s;
    s.kind = RecordKind::kSample;
    s.event = sc.event;
    s.pc = sc.pc;
    s.caller_pc = sc.caller_pc;
    s.mode = sc.mode;
    s.pid = sc.pid;
    s.cycle = sc.cycle;
    return s;
  }

  /// Markers carry the VM's pid: epochs are per-VM, and with multiple
  /// concurrently profiled stacks (the Xen extension) the daemon must not
  /// let one guest's collections advance another guest's epoch counter.
  static Sample epoch_marker(hw::Pid vm_pid, std::uint64_t closed_epoch,
                             std::uint64_t cycle) {
    Sample s;
    s.kind = RecordKind::kEpochMarker;
    s.pid = vm_pid;
    s.epoch = closed_epoch;
    s.cycle = cycle;
    return s;
  }
};

}  // namespace viprof::core
