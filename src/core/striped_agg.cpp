#include "core/striped_agg.hpp"

#include <algorithm>

namespace viprof::core {

namespace {

std::string row_key(const std::string& image, const std::string& symbol) {
  std::string key;
  key.reserve(image.size() + symbol.size() + 1);
  key += image;
  key += '\0';
  key += symbol;
  return key;
}

bool before(std::uint64_t seq_a, std::uint32_t idx_a, std::uint64_t seq_b,
            std::uint32_t idx_b) {
  return seq_a != seq_b ? seq_a < seq_b : idx_a < idx_b;
}

}  // namespace

// ------------------------------------------------------------- SeqProfile

void SeqProfile::fold_row(const ProfileRow& src, std::uint64_t seq,
                          std::uint32_t idx) {
  const auto [it, inserted] =
      index_.try_emplace(row_key(src.image, src.symbol), rows_.size());
  if (inserted) {
    rows_.push_back(SeqRow{src, seq, idx});
    return;
  }
  SeqRow& dst = rows_[it->second];
  for (std::size_t e = 0; e < hw::kEventKindCount; ++e) dst.row.counts[e] += src.counts[e];
  if (before(seq, idx, dst.seq, dst.idx)) {
    // The incoming occurrence is serially earlier: it defines the row's
    // position *and* its domain (first add wins in the serial path).
    dst.seq = seq;
    dst.idx = idx;
    dst.row.domain = src.domain;
  }
}

void SeqProfile::fold(std::uint64_t seq, const Profile& partial) {
  std::uint32_t idx = 0;
  for (const ProfileRow& src : partial.rows()) fold_row(src, seq, idx++);
}

void SeqProfile::fold(const SeqProfile& other) {
  for (const SeqRow& src : other.rows_) fold_row(src.row, src.seq, src.idx);
}

Profile SeqProfile::ordered() const {
  std::vector<const SeqRow*> order;
  order.reserve(rows_.size());
  for (const SeqRow& r : rows_) order.push_back(&r);
  std::sort(order.begin(), order.end(), [](const SeqRow* a, const SeqRow* b) {
    return before(a->seq, a->idx, b->seq, b->idx);
  });
  Profile out;
  for (const SeqRow* r : order) {
    Resolution res;
    res.image = r->row.image;
    res.symbol = r->row.symbol;
    res.domain = r->row.domain;
    const std::size_t slot = out.row_index(res);
    for (std::size_t e = 0; e < hw::kEventKindCount; ++e) {
      if (r->row.counts[e] != 0)
        out.bump(slot, hw::kAllEventKinds[e], r->row.counts[e]);
    }
  }
  return out;
}

// ----------------------------------------------------------- SeqCallGraph

void SeqCallGraph::fold_arc(const CallArc& src, std::uint64_t seq,
                            std::uint32_t idx) {
  std::string key;
  key.reserve(src.caller_image.size() + src.caller_symbol.size() +
              src.callee_image.size() + src.callee_symbol.size() + 3);
  key += src.caller_image;
  key += '\0';
  key += src.caller_symbol;
  key += '\0';
  key += src.callee_image;
  key += '\0';
  key += src.callee_symbol;
  const auto [it, inserted] = index_.try_emplace(std::move(key), arcs_.size());
  if (inserted) {
    arcs_.push_back(SeqArc{src, seq, idx});
    return;
  }
  SeqArc& dst = arcs_[it->second];
  dst.arc.count += src.count;
  if (before(seq, idx, dst.seq, dst.idx)) {
    dst.seq = seq;
    dst.idx = idx;
    dst.arc.caller_domain = src.caller_domain;
    dst.arc.callee_domain = src.callee_domain;
  }
}

void SeqCallGraph::fold(std::uint64_t seq, const CallGraph& partial) {
  std::uint32_t idx = 0;
  for (const CallArc& src : partial.arcs()) fold_arc(src, seq, idx++);
}

void SeqCallGraph::fold(const SeqCallGraph& other) {
  for (const SeqArc& src : other.arcs_) fold_arc(src.arc, src.seq, src.idx);
}

CallGraph SeqCallGraph::ordered() const {
  std::vector<const SeqArc*> order;
  order.reserve(arcs_.size());
  for (const SeqArc& a : arcs_) order.push_back(&a);
  std::sort(order.begin(), order.end(), [](const SeqArc* a, const SeqArc* b) {
    return before(a->seq, a->idx, b->seq, b->idx);
  });
  CallGraph out;
  for (const SeqArc* a : order) out.add_arc(a->arc);
  return out;
}

}  // namespace viprof::core
