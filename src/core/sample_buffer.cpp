#include "core/sample_buffer.hpp"

#include <bit>

#include "support/check.hpp"

namespace viprof::core {

SampleBuffer::SampleBuffer(std::size_t capacity) {
  VIPROF_CHECK(capacity >= 2);
  const std::size_t rounded = std::bit_ceil(capacity);
  slots_.resize(rounded);
  mask_ = rounded - 1;
}

bool SampleBuffer::push(const Sample& sample) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head > mask_) {  // full
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[tail & mask_] = sample;
  tail_.store(tail + 1, std::memory_order_release);
  pushed_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t occupancy = tail + 1 - head;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (occupancy > peak &&
         !peak_.compare_exchange_weak(peak, occupancy, std::memory_order_relaxed)) {
  }
  return true;
}

std::optional<Sample> SampleBuffer::pop() {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) return std::nullopt;
  Sample s = slots_[head & mask_];
  head_.store(head + 1, std::memory_order_release);
  popped_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

std::size_t SampleBuffer::size() const {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<std::size_t>(tail - head);
}

}  // namespace viprof::core
