// The runtime profiler daemon (paper Section 3, "Runtime Profiler").
//
// OProfile's user-level daemon, extended by VIProf: it periodically drains
// the kernel sample buffer and logs samples to per-event files. For each
// user-space sample it walks the process's VMAs to find the backing image;
// VIProf adds one check *before* the anonymous-region fallback — if the PC
// falls inside a registered VM heap, the sample is logged as a JIT.App
// sample tagged with the current execution epoch. The registered-heap check
// is cheaper than OProfile's anonymous-mapping path (dcookie lookup + VMA
// re-walk), which is why the paper occasionally measures VIProf *faster*
// than stock OProfile.
//
// The daemon is a BackgroundService: it steals CPU from the workload on the
// single-core testbed, and its cost is the main source of profiling
// overhead (Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/registration.hpp"
#include "core/sample_buffer.hpp"
#include "core/sample_log.hpp"
#include "os/machine.hpp"
#include "os/service.hpp"

namespace viprof::core {

struct DaemonConfig {
  std::string sample_dir = "samples";

  hw::Cycles wakeup_cost = 10'000;        // schedule-in + buffer mmap scan
  hw::Cycles per_sample_kernel = 240;    // kernel-range match
  hw::Cycles per_sample_image = 390;     // VMA walk + image hash lookup
  hw::Cycles per_sample_anon = 900;      // stock anon path: dcookie + re-walk
  hw::Cycles per_sample_jit = 460;       // VIProf: registration check + epoch tag

  std::size_t drain_watermark = 256;     // drain when backlog reaches this
  hw::Cycles drain_period = 3'000'000;   // ... or at this interval (buffer watershed)
  std::size_t batch = 128;               // samples per scheduling chunk

  /// false = stock OProfile daemon (no registration table consulted).
  bool vm_aware = true;
};

struct DaemonStats {
  std::uint64_t drained = 0;
  std::uint64_t kernel_samples = 0;
  std::uint64_t hypervisor_samples = 0;
  std::uint64_t image_samples = 0;
  std::uint64_t anon_samples = 0;
  std::uint64_t jit_samples = 0;
  std::uint64_t epoch_markers = 0;
  std::uint64_t wakeups = 0;
  hw::Cycles cost_cycles = 0;
};

class Daemon : public os::BackgroundService {
 public:
  Daemon(os::Machine& machine, SampleBuffer& buffer, const RegistrationTable& table,
         const DaemonConfig& config = {});

  /// BackgroundService: drain a batch when the watermark or period triggers.
  std::optional<os::WorkChunk> next_work(hw::Cycles now) override;

  /// End-of-session drain of everything left in the buffer (the daemon
  /// outlives the benchmark; this work is not part of measured time).
  void final_flush();

  const DaemonStats& stats() const { return stats_; }
  const std::string& sample_dir() const { return config_.sample_dir; }

  /// Logging-time epoch for one VM (epochs are tracked per pid).
  std::uint64_t current_epoch(hw::Pid pid) const {
    auto it = epoch_by_pid_.find(pid);
    return it == epoch_by_pid_.end() ? 0 : it->second;
  }

 private:
  /// Classifies + logs one record; returns its processing cost.
  hw::Cycles process(const Sample& sample);

  os::Machine* machine_;
  SampleBuffer* buffer_;
  const RegistrationTable* table_;
  DaemonConfig config_;
  DaemonStats stats_;
  SampleLogWriter log_;
  std::unordered_map<hw::Pid, std::uint64_t> epoch_by_pid_;
  hw::Cycles last_drain_ = 0;
  hw::ExecContext context_{};   // oprofiled's code
  hw::AccessPattern pattern_{}; // oprofiled's data behaviour
};

}  // namespace viprof::core
