// The runtime profiler daemon (paper Section 3, "Runtime Profiler").
//
// OProfile's user-level daemon, extended by VIProf: it periodically drains
// the kernel sample buffer and logs samples to per-event files. For each
// user-space sample it walks the process's VMAs to find the backing image;
// VIProf adds one check *before* the anonymous-region fallback — if the PC
// falls inside a registered VM heap, the sample is logged as a JIT.App
// sample tagged with the current execution epoch. The registered-heap check
// is cheaper than OProfile's anonymous-mapping path (dcookie lookup + VMA
// re-walk), which is why the paper occasionally measures VIProf *faster*
// than stock OProfile.
//
// The daemon is a BackgroundService: it steals CPU from the workload on the
// single-core testbed, and its cost is the main source of profiling
// overhead (Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/registration.hpp"
#include "core/sample_buffer.hpp"
#include "core/sample_log.hpp"
#include "os/machine.hpp"
#include "os/service.hpp"
#include "support/fault.hpp"
#include "support/telemetry.hpp"

namespace viprof::core {

struct DaemonConfig {
  std::string sample_dir = "samples";

  hw::Cycles wakeup_cost = 10'000;        // schedule-in + buffer mmap scan
  hw::Cycles per_sample_kernel = 240;    // kernel-range match
  hw::Cycles per_sample_image = 390;     // VMA walk + image hash lookup
  hw::Cycles per_sample_anon = 900;      // stock anon path: dcookie + re-walk
  hw::Cycles per_sample_jit = 460;       // VIProf: registration check + epoch tag

  std::size_t drain_watermark = 256;     // drain when backlog reaches this
  hw::Cycles drain_period = 3'000'000;   // ... or at this interval (buffer watershed)
  std::size_t batch = 128;               // samples per scheduling chunk

  /// Failed log writes: immediate in-chunk retries, exponential cost.
  std::size_t flush_retries = 3;
  hw::Cycles flush_retry_cost = 60'000;  // first retry; doubles per attempt
  /// Bound on the in-memory spill buffer holding unflushable batches.
  std::size_t spill_capacity_bytes = 256 * 1024;

  /// false = stock OProfile daemon (no registration table consulted).
  bool vm_aware = true;

  /// Optional fault injector; also consulted for scheduled daemon kills.
  support::FaultInjector* fault = nullptr;
};

struct DaemonStats {
  std::uint64_t drained = 0;
  std::uint64_t kernel_samples = 0;
  std::uint64_t hypervisor_samples = 0;
  std::uint64_t image_samples = 0;
  std::uint64_t anon_samples = 0;
  std::uint64_t jit_samples = 0;
  std::uint64_t obj_samples = 0;  // data-address samples in a registered heap
  std::uint64_t epoch_markers = 0;
  std::uint64_t wakeups = 0;
  hw::Cycles cost_cycles = 0;

  // Failure accounting: every lost record is counted somewhere below.
  std::uint64_t flush_write_errors = 0;   // rejected appends (batch spilled)
  std::uint64_t flush_torn_writes = 0;    // appends that landed torn
  std::uint64_t flush_retries = 0;        // in-chunk retry attempts
  std::uint64_t spill_dropped_records = 0;  // spill overflow drops
  std::uint64_t crash_lost_records = 0;   // pending records lost to a crash
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

class Daemon : public os::BackgroundService {
 public:
  Daemon(os::Machine& machine, SampleBuffer& buffer, const RegistrationTable& table,
         const DaemonConfig& config = {});

  /// BackgroundService: drain a batch when the watermark or period triggers.
  std::optional<os::WorkChunk> next_work(hw::Cycles now) override;

  /// End-of-session drain of everything left in the buffer (the daemon
  /// outlives the benchmark; this work is not part of measured time). A
  /// crashed daemon does nothing here — its backlog stays in the buffer,
  /// visible to the session as `samples_left_in_buffer`.
  void final_flush();

  /// Simulated SIGKILL: unflushed batches are lost (counted), and the
  /// daemon stops draining until restart(). Idempotent.
  void crash(hw::Cycles now);

  /// Brings a crashed daemon back (a fresh oprofiled process attaching to
  /// the same buffer and sample tree). Sequence numbers continue from the
  /// pre-crash namespace, so readers see the crash loss as a sequence gap.
  void restart(hw::Cycles now);

  bool killed() const { return dead_; }

  const DaemonStats& stats() const { return stats_; }
  const std::string& sample_dir() const { return config_.sample_dir; }

  /// Logging-time epoch for one VM (epochs are tracked per pid).
  std::uint64_t current_epoch(hw::Pid pid) const {
    auto it = epoch_by_pid_.find(pid);
    return it == epoch_by_pid_.end() ? 0 : it->second;
  }

 private:
  /// Classifies + logs one record; returns its processing cost.
  hw::Cycles process(const Sample& sample);

  /// flush() with bounded retry-with-backoff; returns the cycles charged
  /// for retries and accumulates failure stats.
  hw::Cycles flush_logs();

  os::Machine* machine_;
  SampleBuffer* buffer_;
  const RegistrationTable* table_;
  DaemonConfig config_;
  DaemonStats stats_;
  SampleLogWriter log_;
  std::unordered_map<hw::Pid, std::uint64_t> epoch_by_pid_;
  hw::Cycles last_drain_ = 0;
  bool dead_ = false;
  hw::ExecContext context_{};   // oprofiled's code
  hw::AccessPattern pattern_{}; // oprofiled's data behaviour

  // Self-telemetry handles (daemon.* namespace, DESIGN.md §8). Registered
  // once at construction; increments are lock-free on the drain path.
  support::Counter* tele_drained_ = nullptr;
  support::Counter* tele_wakeups_ = nullptr;
  support::Counter* tele_flushes_ = nullptr;
  support::Counter* tele_jit_samples_ = nullptr;
  support::Counter* tele_obj_samples_ = nullptr;
  support::Counter* tele_epoch_markers_ = nullptr;
  support::Counter* tele_flush_errors_ = nullptr;
  support::Counter* tele_flush_torn_ = nullptr;
  support::Counter* tele_flush_retries_ = nullptr;
  support::Counter* tele_spill_dropped_ = nullptr;
  support::Counter* tele_crashes_ = nullptr;
  support::LatencyHistogram* tele_backlog_ = nullptr;     // samples at wakeup
  support::LatencyHistogram* tele_drain_cost_ = nullptr;  // cycles per drain
  support::LatencyHistogram* tele_flush_cost_ = nullptr;  // retry cycles per flush
};

}  // namespace viprof::core
