#include "core/session.hpp"

#include "core/archive.hpp"
#include "core/resolve_pipeline.hpp"
#include "support/check.hpp"

namespace viprof::core {

ProfilingSession::ProfilingSession(os::Machine& machine, jvm::Vm& vm,
                                   const SessionConfig& config)
    : machine_(&machine), vm_(&vm), config_(config) {}

ProfilingSession::~ProfilingSession() {
  // Leave no dangling handler on the shared CPU, nor a dangling injector
  // on the shared VFS. The injector's telemetry handles point into this
  // machine's registry, so detach them too.
  machine_->cpu().set_nmi_handler(nullptr);
  if (config_.fault != nullptr &&
      machine_->vfs().fault_injector() == config_.fault) {
    machine_->vfs().set_fault_injector(nullptr);
    config_.fault->bind_telemetry(nullptr);
  }
}

void ProfilingSession::attach() {
  VIPROF_CHECK(!attached_);
  attached_ = true;

  if (config_.fault != nullptr) machine_->vfs().set_fault_injector(config_.fault);

  if (config_.mode == ProfilingMode::kBase) {
    machine_->cpu().counters().set_enabled(false);
    return;
  }

  machine_->cpu().counters().set_enabled(true);
  machine_->cpu().counters().configure(config_.counters);
  machine_->cpu().set_max_skid(config_.pc_skid);
  machine_->cpu().set_profiler_context(
      machine_->kernel().context("oprofile_nmi_handler", 0));

  buffer_ = std::make_unique<SampleBuffer>(config_.buffer_capacity);
  tele_nmi_delivered_ = &machine_->telemetry().counter("os.nmi.delivered");
  tele_nmi_dropped_ = &machine_->telemetry().counter("os.nmi.dropped");
  machine_->cpu().set_nmi_handler([this](const hw::SampleContext& sc) -> hw::Cycles {
    // NMI context: two relaxed counter increments on top of the ring push.
    if (buffer_->push(Sample::from_context(sc))) {
      tele_nmi_delivered_->inc();
    } else {
      tele_nmi_dropped_->inc();
    }
    return config_.nmi_cost;
  });

  DaemonConfig dcfg = config_.daemon;
  dcfg.vm_aware = config_.mode == ProfilingMode::kViprof;
  dcfg.fault = config_.fault;
  daemon_ = std::make_unique<Daemon>(*machine_, *buffer_, table_, dcfg);
  vm_->add_service(daemon_.get());

  if (config_.mode == ProfilingMode::kViprof) {
    AgentConfig acfg = config_.agent;
    acfg.fault = config_.fault;
    agent_ = std::make_unique<VmAgent>(*machine_, *buffer_, table_, acfg);
    vm_->add_listener(agent_.get());
  }
}

SessionResult ProfilingSession::run() {
  VIPROF_CHECK(attached_);
  VIPROF_CHECK(!ran_);

  const std::uint64_t nmi_before = machine_->cpu().nmi_count();
  const hw::Cycles nmi_cycles_before = machine_->cpu().nmi_overhead_cycles();
  while (vm_->step(~0ull / 2)) {
  }
  SessionResult result = finish_run();
  result.nmi_count = machine_->cpu().nmi_count() - nmi_before;
  result.nmi_cycles = machine_->cpu().nmi_overhead_cycles() - nmi_cycles_before;
  return result;
}

SessionResult ProfilingSession::finish_run() {
  VIPROF_CHECK(attached_);
  VIPROF_CHECK(!ran_);
  ran_ = true;
  sample_cache_.clear();  // the final flush below appends to the logs

  SessionResult result;
  result.vm = vm_->finish();
  result.cycles = result.vm.cycles;

  if (daemon_) {
    daemon_->final_flush();
    result.daemon = daemon_->stats();
  }
  if (agent_) result.agent = agent_->stats();
  if (buffer_) {
    result.samples_dropped = buffer_->dropped();
    result.samples_left_in_buffer = buffer_->size();
  }
  result.nmi_count = machine_->cpu().nmi_count();
  result.nmi_cycles = machine_->cpu().nmi_overhead_cycles();

  // Self-overhead accounting (DESIGN.md §8.3): profiler cycles are the sum
  // of the kernel half (NMI handler), the agent hooks charged inside the VM,
  // and the daemon's background chunks. `cycles` already *includes* all of
  // them, so overhead relative to the undisturbed run is prof/(total-prof).
  support::Telemetry& tele = machine_->telemetry();
  const hw::Cycles prof_cycles =
      result.nmi_cycles + result.vm.agent_cycles + result.vm.service_cycles;
  tele.gauge("profiler.cycles.nmi").set(static_cast<double>(result.nmi_cycles));
  tele.gauge("profiler.cycles.agent").set(static_cast<double>(result.vm.agent_cycles));
  tele.gauge("profiler.cycles.daemon").set(static_cast<double>(result.vm.service_cycles));
  tele.gauge("profiler.cycles.total").set(static_cast<double>(result.cycles));
  if (result.cycles > prof_cycles) {
    tele.gauge("profiler.overhead_pct")
        .set(100.0 * static_cast<double>(prof_cycles) /
             static_cast<double>(result.cycles - prof_cycles));
  }
  if (buffer_) {
    tele.gauge("core.buffer.peak_occupancy")
        .set(static_cast<double>(buffer_->peak_occupancy()));
    tele.gauge("core.buffer.dropped").set(static_cast<double>(buffer_->dropped()));
  }
  return result;
}

void ProfilingSession::restart_daemon() {
  VIPROF_CHECK(daemon_ != nullptr);
  sample_cache_.clear();  // the revived daemon will write more samples
  daemon_->restart(machine_->cpu().now());
}

void ProfilingSession::export_archive(const std::string& prefix) {
  write_archive(*machine_, table_, machine_->vfs(), prefix);
  export_telemetry(prefix + "/telemetry");
}

void ProfilingSession::export_telemetry(const std::string& prefix) {
  support::Telemetry& tele = machine_->telemetry();
  const support::TelemetrySnapshot snap = tele.snapshot();
  // Snapshot export happens offline, after the measured run; bypass the
  // fault injector so a dying disk cannot destroy the telemetry about it.
  support::FaultInjector* fault = machine_->vfs().fault_injector();
  if (fault != nullptr) machine_->vfs().set_fault_injector(nullptr);
  machine_->vfs().write(prefix + "/metrics.json", snap.to_json());
  machine_->vfs().write(prefix + "/metrics.txt", snap.render_text());
  const double cycles_per_us = machine_->config().clock_ghz * 1000.0;
  machine_->vfs().write(prefix + "/trace.json",
                        tele.spans().to_chrome_json(cycles_per_us));
  if (fault != nullptr) machine_->vfs().set_fault_injector(fault);
}

Resolver& ProfilingSession::resolver() {
  if (!resolver_) {
    resolver_ = std::make_unique<Resolver>(
        *machine_, table_, config_.mode == ProfilingMode::kViprof);
    resolver_->load();
  }
  return *resolver_;
}

const std::vector<LoggedSample>& ProfilingSession::logged_samples(hw::EventKind event) {
  VIPROF_CHECK(daemon_ != nullptr);
  const std::size_t idx = hw::event_index(event);
  auto it = sample_cache_.find(idx);
  if (it == sample_cache_.end()) {
    it = sample_cache_
             .emplace(idx, SampleLogReader::read(machine_->vfs(),
                                                 daemon_->sample_dir(), event))
             .first;
  }
  return it->second;
}

Profile ProfilingSession::build_profile(const std::vector<hw::EventKind>& events) {
  Profile profile;
  if (config_.mode == ProfilingMode::kBase || !daemon_) return profile;
  Resolver& r = resolver();
  ResolvePipeline pipeline(PipelineConfig{config_.resolve_threads});
  for (hw::EventKind event : events) {
    const ResolveStats stats = pipeline.aggregate_profile(
        logged_samples(event), event,
        [&r](const LoggedSample& s, ResolveStats& st) { return r.resolve(s, st); },
        profile);
    // Keep the resolver's outcome accessors meaningful, as in the serial path.
    r.fold(stats);
  }
  return profile;
}

CallGraph ProfilingSession::build_callgraph(hw::EventKind event) {
  CallGraph graph(resolver());
  if (config_.mode == ProfilingMode::kBase || !daemon_) return graph;
  ResolvePipeline pipeline(PipelineConfig{config_.resolve_threads});
  pipeline.aggregate_callgraph(logged_samples(event), graph);
  return graph;
}

std::string ProfilingSession::report_text(const std::vector<hw::EventKind>& events,
                                          std::size_t top_n) {
  return build_profile(events).render(events, top_n);
}

}  // namespace viprof::core
