#include "core/annotate.hpp"

#include <algorithm>

#include "support/format.hpp"

namespace viprof::core {

std::string Annotation::render() const {
  std::string out = image + ":" + symbol + "  (" + std::to_string(total_samples) +
                    " samples, body " + std::to_string(symbol_size) + " bytes)\n";
  std::uint64_t peak = 1;
  for (std::uint64_t b : buckets) peak = std::max(peak, b);
  const std::uint64_t stride =
      buckets.empty() ? 0 : (symbol_size + buckets.size() - 1) / buckets.size();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto width = static_cast<std::size_t>(
        40.0 * static_cast<double>(buckets[i]) / static_cast<double>(peak));
    out += "  +" + support::pad_left(support::hex(i * stride), 8) + " | " +
           std::string(width, '#') + " " + std::to_string(buckets[i]) + "\n";
  }
  if (out_of_range > 0) {
    out += "  (" + std::to_string(out_of_range) +
           " samples outside the recorded extent)\n";
  }
  return out;
}

}  // namespace viprof::core
