// opreport-style aggregation and rendering (paper Fig. 1).
//
// Aggregates resolved samples into (image, symbol) rows with per-event
// counts, computes percentages against each event's total, and renders the
// fixed-width table the paper shows:
//
//   Time %  Dmiss %  Image name  Symbol name
//   13.01   0.56     RVM.map     com.ibm.jikesrvm...getOsrPrologueLength
//   ...
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/resolver.hpp"
#include "hw/event.hpp"

namespace viprof::core {

struct ProfileRow {
  std::string image;
  std::string symbol;
  SampleDomain domain = SampleDomain::kUnknown;
  std::uint64_t counts[hw::kEventKindCount] = {};

  std::uint64_t count(hw::EventKind e) const { return counts[hw::event_index(e)]; }
};

/// Column header the paper uses for each event.
const char* event_column_title(hw::EventKind event);

/// Aggregation is hash-based: rows are interned in an unordered_map keyed
/// on (image, symbol), so add() is O(1) amortised instead of a linear row
/// scan, while rows_ preserves first-insertion order — ranked() and
/// render() output is unchanged.
class Profile {
 public:
  void add(hw::EventKind event, const Resolution& res, std::uint64_t count = 1);

  /// Adds every row and total of `other` into this profile. Merging
  /// per-shard profiles in shard order reproduces the serial profile
  /// exactly (row order included): a row's first-occurrence shard is the
  /// shard of its globally first sample.
  void merge(const Profile& other);

  std::uint64_t total(hw::EventKind event) const {
    return totals_[hw::event_index(event)];
  }

  double percent(const ProfileRow& row, hw::EventKind event) const;

  /// Rows sorted by the count of `primary` (descending).
  std::vector<ProfileRow> ranked(hw::EventKind primary) const;

  /// Sum of counts of `event` over rows in `domain`.
  std::uint64_t domain_total(SampleDomain domain, hw::EventKind event) const;

  /// Row for an exact (image, symbol), if present.
  const ProfileRow* find(const std::string& image, const std::string& symbol) const;

  /// Interning API for hot aggregation loops (service ingest, resolve
  /// shards): intern the row slot once, then bump() repeats without
  /// rebuilding the "image\0symbol" hash key per sample. Indices stay
  /// valid across later add()s (rows are never removed). bump() maintains
  /// totals exactly as add() does: row_index() + bump() == add().
  std::size_t row_index(const Resolution& res);
  void bump(std::size_t row, hw::EventKind event, std::uint64_t count = 1) {
    totals_[hw::event_index(event)] += count;
    rows_[row].counts[hw::event_index(event)] += count;
  }

  /// Fig. 1-style report: one percentage column per event in `events`,
  /// then image and symbol names; top `top_n` rows by the first event.
  std::string render(const std::vector<hw::EventKind>& events, std::size_t top_n) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<ProfileRow>& rows() const { return rows_; }

 private:
  std::size_t row_slot(const std::string& image, const std::string& symbol,
                       SampleDomain domain);
  ProfileRow& row_for(const std::string& image, const std::string& symbol,
                      SampleDomain domain) {
    return rows_[row_slot(image, symbol, domain)];
  }

  std::vector<ProfileRow> rows_;
  /// "image\0symbol" -> index into rows_ (symbols never contain NUL).
  std::unordered_map<std::string, std::size_t> index_;
  std::uint64_t totals_[hw::kEventKindCount] = {};
};

/// Regression table between two profiles: rows whose `event` count changed,
/// ranked by |delta| descending (ties keep `after`-then-`before` row order,
/// so equally-built profiles render byte-identically). Used by the service
/// snapshot diff and the store's window-vs-window queries.
std::string render_diff(const Profile& before, const Profile& after,
                        hw::EventKind event, std::size_t top_n);

}  // namespace viprof::core
