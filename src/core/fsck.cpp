#include "core/fsck.hpp"

#include <optional>
#include <vector>

#include "core/code_map.hpp"
#include "core/sample_log.hpp"
#include "hw/event.hpp"
#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::core {

namespace {

std::string basename_of(const std::string& path) {
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

FsckReport fsck_tree(const os::Vfs& in, os::Vfs* out, support::Telemetry& telemetry,
                     const FsckOptions& opts) {
  if (opts.write_recovery) VIPROF_CHECK(out != nullptr);
  FsckReport report;

  support::Counter& ctr_valid = telemetry.counter("fsck.samples.valid");
  support::Counter& ctr_salvaged = telemetry.counter("fsck.samples.salvaged");
  support::Counter& ctr_discarded = telemetry.counter("fsck.samples.discarded_lines");
  support::Counter& ctr_missing = telemetry.counter("fsck.samples.missing");
  support::Counter& ctr_duplicates = telemetry.counter("fsck.samples.duplicates");
  support::Counter& ctr_dead_logs = telemetry.counter("fsck.logs.unrecoverable");
  support::Counter& ctr_maps_intact = telemetry.counter("fsck.maps.intact");
  support::Counter& ctr_maps_truncated = telemetry.counter("fsck.maps.truncated");
  support::Counter& ctr_map_entries = telemetry.counter("fsck.maps.entries_salvaged");
  support::Counter& ctr_dead_maps = telemetry.counter("fsck.maps.unrecoverable");

  // --- Sample logs: one file per event, verified record by record ---------
  std::optional<SampleLogWriter> rewriter;
  if (opts.write_recovery) rewriter.emplace(*out, opts.samples_dir);
  std::vector<std::string> rewritten_paths;
  for (hw::EventKind event : hw::kAllEventKinds) {
    SampleLogReadStatus st;
    const auto samples = SampleLogReader::read_checked(in, opts.samples_dir, event, st);
    if (st.missing) continue;
    const std::string path = SampleLogWriter::path_for(opts.samples_dir, event);
    rewritten_paths.push_back(path);
    ++report.logs_scanned;
    report.valid_records += st.valid;
    report.salvaged_records += st.salvaged;
    report.discarded_lines += st.discarded_lines;
    report.missing_records += st.missing_records;
    report.duplicate_records += st.duplicate_records;
    if (!st.clean()) {
      report.corrupt = true;
      // A corrupt log that kept *nothing* verifiable is a total loss: the
      // event's profile cannot be reconstructed at all.
      if (st.valid == 0 && st.discarded_lines > 0) ++report.dead_logs;
    }
    if (opts.verbose) {
      report.details += path + ' ' + (st.clean() ? "clean" : "CORRUPT") + ": " +
                        u64(st.valid) + " valid";
      if (!st.clean()) {
        report.details += ", " + u64(st.salvaged) + " salvaged, " +
                          u64(st.discarded_lines) + " line(s) discarded (" +
                          u64(st.discarded_bytes) + " bytes)";
      }
      if (st.missing_records != 0)
        report.details += ", " + u64(st.missing_records) + " missing (sequence gaps)";
      if (st.duplicate_records != 0)
        report.details += ", " + u64(st.duplicate_records) + " duplicate(s) dropped";
      report.details += '\n';
    }
    if (opts.write_recovery) {
      for (const LoggedSample& s : samples) rewriter->append(event, s);
    }
  }
  if (opts.write_recovery) rewriter->flush();

  // --- Epoch code maps: entry count + checksum trailer --------------------
  for (const std::string& path : in.list("")) {
    if (basename_of(path).rfind("map.", 0) != 0) continue;
    const auto contents = in.read(path);
    const auto epoch_hint = CodeMapFile::epoch_from_path(path);
    const CodeMapFile::Recovery rec =
        CodeMapFile::salvage(*contents, epoch_hint.value_or(0));
    if (rec.intact) {
      ++report.maps_intact;
    } else {
      ++report.maps_truncated;
      report.map_entries_salvaged += rec.file.entries.size();
      report.corrupt = true;
      if (rec.file.entries.empty() && rec.entries_expected > 0) ++report.dead_maps;
      if (opts.verbose) {
        report.details += path + " CORRUPT: salvaged " + u64(rec.file.entries.size()) +
                          " of " + u64(rec.entries_expected) + " entries (epoch " +
                          u64(rec.file.epoch) +
                          (rec.header_ok ? ")" : ", epoch from file name)") + '\n';
      }
    }
    if (opts.write_recovery) out->write(path, rec.file.serialize());
  }

  // --- Everything else (manifest, RVM.map, reports) copies verbatim -------
  if (opts.write_recovery) {
    for (const std::string& path : in.list("")) {
      if (out->exists(path)) continue;  // already rewritten above
      bool handled = false;
      for (const std::string& p : rewritten_paths) handled = handled || p == path;
      if (!handled) out->write(path, *in.read(path));
    }
  }

  report.verdict = !report.corrupt ? FsckVerdict::kClean
                   : (report.dead_logs != 0 || report.dead_maps != 0)
                       ? FsckVerdict::kUnrecoverable
                       : FsckVerdict::kSalvaged;

  ctr_valid.inc(report.valid_records);
  ctr_salvaged.inc(report.salvaged_records);
  ctr_discarded.inc(report.discarded_lines);
  ctr_missing.inc(report.missing_records);
  ctr_duplicates.inc(report.duplicate_records);
  ctr_dead_logs.inc(report.dead_logs);
  ctr_maps_intact.inc(report.maps_intact);
  ctr_maps_truncated.inc(report.maps_truncated);
  ctr_map_entries.inc(report.map_entries_salvaged);
  ctr_dead_maps.inc(report.dead_maps);
  telemetry.gauge("fsck.verdict").set(static_cast<double>(report.verdict));
  report.metrics = telemetry.snapshot();

  report.summary = std::string(to_string(report.verdict)) + ": " +
                   u64(report.valid_records) + " valid sample(s) (" +
                   u64(report.salvaged_records) + " salvaged), " +
                   u64(report.discarded_lines) + " discarded, " +
                   u64(report.missing_records) + " missing, " +
                   u64(report.duplicate_records) + " duplicate(s); " +
                   u64(report.maps_intact) + " map(s) intact, " +
                   u64(report.maps_truncated) + " truncated (" +
                   u64(report.map_entries_salvaged) + " entries salvaged)";
  return report;
}

}  // namespace viprof::core
