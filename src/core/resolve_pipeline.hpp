// Parallel sharded resolution pipeline (DESIGN.md §9).
//
// Post-processing is where VIProf spends its cycles by design — the paper
// moves cost off the sampling path and into offline analysis. This pipeline
// makes the offline resolve→aggregate step scale with host cores without
// changing a byte of output: samples are partitioned into contiguous
// shards, each worker resolves its shard into a private Profile/CallGraph
// and ResolveStats, and the partials are merged in shard order — which
// reproduces the serial first-occurrence row order exactly (a row's first
// shard is the shard of its globally first sample).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/callgraph.hpp"
#include "core/report.hpp"
#include "core/resolver.hpp"
#include "core/sample_log.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace viprof::core {

struct PipelineConfig {
  /// Worker threads; 1 = serial (no pool), 0 = one per hardware thread.
  std::size_t threads = 1;
  /// Minimum samples per shard — below threads*min_shard the pipeline runs
  /// inline, because thread handoff would cost more than it saves.
  std::size_t min_shard = 2048;
  /// When set, the worker pool's queue lock and task counters register
  /// here (keys "pool.*") — the same contention evidence the service
  /// publishes, for offline runs.
  support::Telemetry* telemetry = nullptr;
};

class ResolvePipeline {
 public:
  /// Resolves one sample; tallies go into the caller-provided stats so the
  /// function can be called concurrently (see Resolver's contract).
  using ResolveFn = std::function<Resolution(const LoggedSample&, ResolveStats&)>;

  explicit ResolvePipeline(PipelineConfig config = {});
  ~ResolvePipeline();

  /// Resolves every sample with `fn` and aggregates into `out` under
  /// `event`. Returns the summed shard stats (not yet folded anywhere).
  /// `out` may already hold rows from earlier events; output is
  /// byte-identical to the serial loop for any thread count.
  ResolveStats aggregate_profile(const std::vector<LoggedSample>& samples,
                                 hw::EventKind event, const ResolveFn& fn,
                                 Profile& out);

  /// Same sharding for call-graph arcs. Resolution happens through
  /// `out`'s resolver; outcome tallies fold into that resolver's atomic
  /// counters as in the serial path.
  void aggregate_callgraph(const std::vector<LoggedSample>& samples, CallGraph& out);

  /// Worker count the pipeline will actually use (>= 1).
  std::size_t threads() const { return threads_; }

 private:
  /// Shards for `count` samples: 1..threads_, never starving min_shard.
  std::size_t shard_count(std::size_t count) const;

  PipelineConfig config_;
  std::size_t threads_ = 1;
  std::unique_ptr<support::ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace viprof::core
