#include "core/report.hpp"

#include <algorithm>

#include "support/format.hpp"

namespace viprof::core {

const char* event_column_title(hw::EventKind event) {
  switch (event) {
    case hw::EventKind::kGlobalPowerEvents: return "Time %";
    case hw::EventKind::kBsqCacheReference: return "Dmiss %";
    case hw::EventKind::kInstrRetired:      return "Instr %";
    case hw::EventKind::kItlbMiss:          return "ITLB %";
    case hw::EventKind::kBranchMispredict:  return "BrMiss %";
  }
  return "?";
}

void Profile::add(hw::EventKind event, const Resolution& res, std::uint64_t count) {
  totals_[hw::event_index(event)] += count;
  for (ProfileRow& row : rows_) {
    if (row.image == res.image && row.symbol == res.symbol) {
      row.counts[hw::event_index(event)] += count;
      return;
    }
  }
  ProfileRow row;
  row.image = res.image;
  row.symbol = res.symbol;
  row.domain = res.domain;
  row.counts[hw::event_index(event)] = count;
  rows_.push_back(std::move(row));
}

double Profile::percent(const ProfileRow& row, hw::EventKind event) const {
  const std::uint64_t total = totals_[hw::event_index(event)];
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(row.count(event)) / static_cast<double>(total);
}

std::vector<ProfileRow> Profile::ranked(hw::EventKind primary) const {
  std::vector<ProfileRow> out = rows_;
  std::stable_sort(out.begin(), out.end(),
                   [&](const ProfileRow& a, const ProfileRow& b) {
                     return a.count(primary) > b.count(primary);
                   });
  return out;
}

std::uint64_t Profile::domain_total(SampleDomain domain, hw::EventKind event) const {
  std::uint64_t total = 0;
  for (const ProfileRow& row : rows_)
    if (row.domain == domain) total += row.count(event);
  return total;
}

const ProfileRow* Profile::find(const std::string& image,
                                const std::string& symbol) const {
  for (const ProfileRow& row : rows_)
    if (row.image == image && row.symbol == symbol) return &row;
  return nullptr;
}

std::string Profile::render(const std::vector<hw::EventKind>& events,
                            std::size_t top_n) const {
  std::vector<std::string> headers;
  for (hw::EventKind e : events) headers.push_back(event_column_title(e));
  headers.push_back("Image name");
  headers.push_back("Symbol name");
  support::TextTable table(std::move(headers));

  const auto rows = ranked(events.empty() ? hw::EventKind::kGlobalPowerEvents : events[0]);
  std::size_t emitted = 0;
  for (const ProfileRow& row : rows) {
    if (emitted >= top_n) break;
    std::vector<std::string> cells;
    for (hw::EventKind e : events) cells.push_back(support::fixed(percent(row, e), 4));
    cells.push_back(row.image);
    cells.push_back(row.symbol);
    table.add_row(std::move(cells));
    ++emitted;
  }
  return table.render();
}

}  // namespace viprof::core
