#include "core/report.hpp"

#include <algorithm>

#include "support/format.hpp"

namespace viprof::core {

const char* event_column_title(hw::EventKind event) {
  switch (event) {
    case hw::EventKind::kGlobalPowerEvents: return "Time %";
    case hw::EventKind::kBsqCacheReference: return "Dmiss %";
    case hw::EventKind::kInstrRetired:      return "Instr %";
    case hw::EventKind::kItlbMiss:          return "ITLB %";
    case hw::EventKind::kBranchMispredict:  return "BrMiss %";
    case hw::EventKind::kObjDmiss:          return "ObjDmiss %";
  }
  return "?";
}

std::size_t Profile::row_slot(const std::string& image, const std::string& symbol,
                              SampleDomain domain) {
  std::string key;
  key.reserve(image.size() + symbol.size() + 1);
  key += image;
  key += '\0';
  key += symbol;
  const auto [it, inserted] = index_.try_emplace(std::move(key), rows_.size());
  if (inserted) {
    ProfileRow row;
    row.image = image;
    row.symbol = symbol;
    row.domain = domain;
    rows_.push_back(std::move(row));
  }
  return it->second;
}

std::size_t Profile::row_index(const Resolution& res) {
  return row_slot(res.image, res.symbol, res.domain);
}

void Profile::add(hw::EventKind event, const Resolution& res, std::uint64_t count) {
  totals_[hw::event_index(event)] += count;
  row_for(res.image, res.symbol, res.domain).counts[hw::event_index(event)] += count;
}

void Profile::merge(const Profile& other) {
  for (std::size_t i = 0; i < hw::kEventKindCount; ++i) totals_[i] += other.totals_[i];
  for (const ProfileRow& src : other.rows_) {
    ProfileRow& dst = row_for(src.image, src.symbol, src.domain);
    for (std::size_t i = 0; i < hw::kEventKindCount; ++i) {
      dst.counts[i] += src.counts[i];
    }
  }
}

double Profile::percent(const ProfileRow& row, hw::EventKind event) const {
  const std::uint64_t total = totals_[hw::event_index(event)];
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(row.count(event)) / static_cast<double>(total);
}

std::vector<ProfileRow> Profile::ranked(hw::EventKind primary) const {
  std::vector<ProfileRow> out = rows_;
  std::stable_sort(out.begin(), out.end(),
                   [&](const ProfileRow& a, const ProfileRow& b) {
                     return a.count(primary) > b.count(primary);
                   });
  return out;
}

std::uint64_t Profile::domain_total(SampleDomain domain, hw::EventKind event) const {
  std::uint64_t total = 0;
  for (const ProfileRow& row : rows_)
    if (row.domain == domain) total += row.count(event);
  return total;
}

const ProfileRow* Profile::find(const std::string& image,
                                const std::string& symbol) const {
  std::string key;
  key.reserve(image.size() + symbol.size() + 1);
  key += image;
  key += '\0';
  key += symbol;
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &rows_[it->second];
}

std::string Profile::render(const std::vector<hw::EventKind>& events,
                            std::size_t top_n) const {
  std::vector<std::string> headers;
  for (hw::EventKind e : events) headers.push_back(event_column_title(e));
  headers.push_back("Image name");
  headers.push_back("Symbol name");
  support::TextTable table(std::move(headers));

  const auto rows = ranked(events.empty() ? hw::EventKind::kGlobalPowerEvents : events[0]);
  std::size_t emitted = 0;
  for (const ProfileRow& row : rows) {
    if (emitted >= top_n) break;
    std::vector<std::string> cells;
    for (hw::EventKind e : events) cells.push_back(support::fixed(percent(row, e), 4));
    cells.push_back(row.image);
    cells.push_back(row.symbol);
    table.add_row(std::move(cells));
    ++emitted;
  }
  return table.render();
}

std::string render_diff(const Profile& before, const Profile& after,
                        hw::EventKind event, std::size_t top_n) {
  struct Mover {
    std::int64_t delta;
    std::uint64_t from, to;
    const ProfileRow* row;
  };
  std::vector<Mover> movers;
  for (const ProfileRow& row : after.rows()) {
    const ProfileRow* prev = before.find(row.image, row.symbol);
    const std::uint64_t from = prev ? prev->count(event) : 0;
    const std::uint64_t to = row.count(event);
    if (from != to)
      movers.push_back({static_cast<std::int64_t>(to) - static_cast<std::int64_t>(from),
                        from, to, &row});
  }
  for (const ProfileRow& row : before.rows()) {
    if (after.find(row.image, row.symbol) != nullptr) continue;
    const std::uint64_t from = row.count(event);
    if (from != 0)
      movers.push_back({-static_cast<std::int64_t>(from), from, 0, &row});
  }
  std::stable_sort(movers.begin(), movers.end(), [](const Mover& x, const Mover& y) {
    const std::int64_t ax = x.delta < 0 ? -x.delta : x.delta;
    const std::int64_t ay = y.delta < 0 ? -y.delta : y.delta;
    return ax > ay;
  });

  support::TextTable table({"Delta", "Before", "After", "Image", "Symbol"});
  std::size_t emitted = 0;
  for (const Mover& m : movers) {
    if (emitted++ >= top_n) break;
    table.add_row({(m.delta > 0 ? "+" : "") + std::to_string(m.delta),
                   std::to_string(m.from), std::to_string(m.to), m.row->image,
                   m.row->symbol});
  }
  return table.render();
}

}  // namespace viprof::core
