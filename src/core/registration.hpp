// VM registration — the paper's key runtime mechanism (Section 3, "Runtime
// Profiler"): a virtual machine registers that it executes dynamically
// generated code and declares its heap boundaries. The daemon consults this
// table before logging a sample as anonymous; samples inside a registered
// heap become JIT.App samples instead. The table is written once at VM
// start-up and read on the sample-logging path, so lookups are O(#VMs) with
// a cheap range check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace viprof::core {

struct VmRegistration {
  hw::Pid pid = 0;
  hw::Address heap_lo = 0;
  hw::Address heap_hi = 0;
  hw::Address boot_base = 0;
  std::uint64_t boot_size = 0;
  std::string boot_map_path;  // RVM.map location (build product)
  std::string jit_map_dir;    // where the agent writes epoch code maps
  std::string obj_map_dir;    // where the memprof agent writes epoch object
                              // maps; empty = no object profiling

  bool heap_contains(hw::Address pc) const { return pc >= heap_lo && pc < heap_hi; }
  bool boot_contains(hw::Address pc) const {
    return pc >= boot_base && pc < boot_base + boot_size;
  }
};

/// Outcome of RegistrationTable::add. Anything but kOk leaves the table
/// unchanged; the caller decides whether that is fatal (the daemon logs and
/// drops, the profile server reports it back over the wire).
enum class RegisterStatus : std::uint8_t {
  kOk,
  kDuplicatePid,  // pid already registered; remove() first to re-register
  kBadRange,      // heap_lo >= heap_hi (an empty heap registers nothing)
  kOverlap,       // the VM's own heap and boot image ranges intersect
};

inline const char* to_string(RegisterStatus s) {
  switch (s) {
    case RegisterStatus::kOk: return "ok";
    case RegisterStatus::kDuplicatePid: return "duplicate-pid";
    case RegisterStatus::kBadRange: return "bad-range";
    case RegisterStatus::kOverlap: return "overlap";
  }
  return "?";
}

class RegistrationTable {
 public:
  /// Validates and inserts. Rejected registrations do not change the table
  /// or its version. Ranges of *different* pids may overlap freely — each
  /// pid is its own address space — but one VM's heap must not intersect
  /// its own boot image, or samples in the intersection would be
  /// double-claimable.
  RegisterStatus add(const VmRegistration& reg) {
    if (reg.heap_lo >= reg.heap_hi) return RegisterStatus::kBadRange;
    if (find_pid(reg.pid) != nullptr) return RegisterStatus::kDuplicatePid;
    if (reg.boot_size > 0 && reg.heap_lo < reg.boot_base + reg.boot_size &&
        reg.boot_base < reg.heap_hi)
      return RegisterStatus::kOverlap;
    regs_.push_back(reg);
    ++version_;
    return RegisterStatus::kOk;
  }

  /// Deregisters `pid`; false when it was not registered. After removal the
  /// same pid may register again (restart / re-exec of the VM).
  bool remove(hw::Pid pid) {
    for (auto it = regs_.begin(); it != regs_.end(); ++it) {
      if (it->pid == pid) {
        regs_.erase(it);
        ++version_;
        return true;
      }
    }
    return false;
  }

  void clear() {
    if (!regs_.empty()) ++version_;
    regs_.clear();
  }

  /// Bumped by every successful mutation; lets readers that cache derived
  /// state (the service's code-map cache, resolvers) detect churn cheaply.
  std::uint64_t version() const { return version_; }

  /// Registration whose heap (or boot image) covers `pc` for `pid`.
  const VmRegistration* find_heap(hw::Pid pid, hw::Address pc) const {
    for (const auto& r : regs_)
      if (r.pid == pid && r.heap_contains(pc)) return &r;
    return nullptr;
  }

  const VmRegistration* find_pid(hw::Pid pid) const {
    for (const auto& r : regs_)
      if (r.pid == pid) return &r;
    return nullptr;
  }

  const std::vector<VmRegistration>& all() const { return regs_; }
  bool empty() const { return regs_.empty(); }

 private:
  std::vector<VmRegistration> regs_;
  std::uint64_t version_ = 0;
};

}  // namespace viprof::core
