// VM registration — the paper's key runtime mechanism (Section 3, "Runtime
// Profiler"): a virtual machine registers that it executes dynamically
// generated code and declares its heap boundaries. The daemon consults this
// table before logging a sample as anonymous; samples inside a registered
// heap become JIT.App samples instead. The table is written once at VM
// start-up and read on the sample-logging path, so lookups are O(#VMs) with
// a cheap range check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/types.hpp"

namespace viprof::core {

struct VmRegistration {
  hw::Pid pid = 0;
  hw::Address heap_lo = 0;
  hw::Address heap_hi = 0;
  hw::Address boot_base = 0;
  std::uint64_t boot_size = 0;
  std::string boot_map_path;  // RVM.map location (build product)
  std::string jit_map_dir;    // where the agent writes epoch code maps

  bool heap_contains(hw::Address pc) const { return pc >= heap_lo && pc < heap_hi; }
  bool boot_contains(hw::Address pc) const {
    return pc >= boot_base && pc < boot_base + boot_size;
  }
};

class RegistrationTable {
 public:
  void add(const VmRegistration& reg) { regs_.push_back(reg); }
  void clear() { regs_.clear(); }

  /// Registration whose heap (or boot image) covers `pc` for `pid`.
  const VmRegistration* find_heap(hw::Pid pid, hw::Address pc) const {
    for (const auto& r : regs_)
      if (r.pid == pid && r.heap_contains(pc)) return &r;
    return nullptr;
  }

  const VmRegistration* find_pid(hw::Pid pid) const {
    for (const auto& r : regs_)
      if (r.pid == pid) return &r;
    return nullptr;
  }

  const std::vector<VmRegistration>& all() const { return regs_; }
  bool empty() const { return regs_.empty(); }

 private:
  std::vector<VmRegistration> regs_;
};

}  // namespace viprof::core
