// Profile-guided cross-layer optimisation advisor — the purpose VIProf was
// built for (paper Section 1: "employ VIProf profiles to guide online
// optimization of programs and their execution environments"; Section 5:
// "profile-guided optimizations across multiple layers of the execution
// stack"). Implemented here as the paper's future work.
//
// The advisor consumes a unified VIProf profile and emits actionable,
// layer-specific recommendations:
//   * application/VM layer: hot JIT methods worth compiling at the top
//     tier immediately (skipping the adaptive ladder's warm-up);
//   * OS layer: kernel routines hot enough to justify workload-specific
//     specialisation (the VIVA Linux-customisation line of work);
// plus the per-layer time breakdown that justifies them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"

namespace viprof::guidance {

struct AdvisorConfig {
  double hot_method_threshold = 0.02;   // min time fraction to flag a method
  double kernel_threshold = 0.015;      // min time fraction to flag a routine
  std::size_t max_methods = 12;
  std::size_t max_kernel = 4;
};

struct MethodAdvice {
  std::string qualified_name;
  double time_frac = 0.0;
};

struct KernelAdvice {
  std::string routine;
  double time_frac = 0.0;
};

struct Advice {
  std::vector<MethodAdvice> hot_methods;
  std::vector<KernelAdvice> kernel_hotspots;
  double jit_frac = 0.0;
  double vm_frac = 0.0;
  double native_frac = 0.0;
  double kernel_frac = 0.0;

  bool empty() const { return hot_methods.empty() && kernel_hotspots.empty(); }
  std::string render() const;
};

class Advisor {
 public:
  explicit Advisor(const AdvisorConfig& config = {}) : config_(config) {}

  /// Analyses a unified profile over `event` (typically time).
  Advice analyze(const core::Profile& profile, hw::EventKind event) const;

 private:
  AdvisorConfig config_;
};

}  // namespace viprof::guidance
