#include "guidance/feedback.hpp"

namespace viprof::guidance {

FeedbackReport apply_advice(const Advice& advice, jvm::Vm& vm, os::Machine& machine,
                            const FeedbackConfig& config) {
  FeedbackReport report;
  if (config.apply_vm_advice && !advice.hot_methods.empty()) {
    std::vector<std::string> names;
    names.reserve(advice.hot_methods.size());
    for (const MethodAdvice& m : advice.hot_methods) names.push_back(m.qualified_name);
    vm.set_aggressive_methods(names);
    report.methods_boosted = names.size();
  }
  if (config.apply_kernel_advice) {
    for (const KernelAdvice& k : advice.kernel_hotspots) {
      machine.kernel().specialize(k.routine, config.kernel_cpi_scale);
      ++report.routines_specialized;
    }
  }
  return report;
}

}  // namespace viprof::guidance
