#include "guidance/advisor.hpp"

#include "support/format.hpp"

namespace viprof::guidance {

Advice Advisor::analyze(const core::Profile& profile, hw::EventKind event) const {
  Advice advice;
  const auto total = static_cast<double>(profile.total(event));
  if (total <= 0.0) return advice;

  auto frac = [&](core::SampleDomain d) {
    return static_cast<double>(profile.domain_total(d, event)) / total;
  };
  advice.jit_frac = frac(core::SampleDomain::kJit);
  advice.vm_frac = frac(core::SampleDomain::kBoot);
  advice.native_frac = frac(core::SampleDomain::kImage);
  advice.kernel_frac = frac(core::SampleDomain::kKernel);

  for (const core::ProfileRow& row : profile.ranked(event)) {
    const double row_frac = static_cast<double>(row.count(event)) / total;
    if (row.domain == core::SampleDomain::kJit &&
        row_frac >= config_.hot_method_threshold &&
        advice.hot_methods.size() < config_.max_methods &&
        row.symbol.find('(') == std::string::npos) {  // skip "(unknown ...)"
      advice.hot_methods.push_back({row.symbol, row_frac});
    }
    if (row.domain == core::SampleDomain::kKernel &&
        row_frac >= config_.kernel_threshold &&
        advice.kernel_hotspots.size() < config_.max_kernel &&
        row.symbol.find('(') == std::string::npos) {
      // The profiler's own kernel half is not a specialisation target.
      if (row.symbol.rfind("oprofile", 0) != 0) {
        advice.kernel_hotspots.push_back({row.symbol, row_frac});
      }
    }
  }
  return advice;
}

std::string Advice::render() const {
  std::string out;
  out += "layer breakdown: jit " + support::fixed(jit_frac * 100, 1) + "%  vm " +
         support::fixed(vm_frac * 100, 1) + "%  native " +
         support::fixed(native_frac * 100, 1) + "%  kernel " +
         support::fixed(kernel_frac * 100, 1) + "%\n";
  out += "recompile at top tier on first touch:\n";
  for (const MethodAdvice& m : hot_methods) {
    out += "  " + support::fixed(m.time_frac * 100, 1) + "%  " + m.qualified_name + "\n";
  }
  out += "kernel specialisation candidates:\n";
  for (const KernelAdvice& k : kernel_hotspots) {
    out += "  " + support::fixed(k.time_frac * 100, 1) + "%  " + k.routine + "\n";
  }
  return out;
}

}  // namespace viprof::guidance
