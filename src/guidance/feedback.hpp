// Applies cross-layer advice to a fresh execution environment: the VM is
// told to compile the flagged methods at the top tier immediately, and the
// kernel's flagged routines are specialised (CPI-scaled fast paths). This
// closes the loop the paper's VIVA project sketches: profile once, adapt
// the *whole stack*, run faster.
#pragma once

#include "guidance/advisor.hpp"
#include "jvm/vm.hpp"
#include "os/machine.hpp"

namespace viprof::guidance {

struct FeedbackConfig {
  /// CPI scale applied to specialised kernel routines (a trimmed fast
  /// path; the VIVA kernel-customisation papers report 10-40% on hot
  /// syscall paths).
  double kernel_cpi_scale = 0.72;
  bool apply_vm_advice = true;
  bool apply_kernel_advice = true;
};

struct FeedbackReport {
  std::size_t methods_boosted = 0;
  std::size_t routines_specialized = 0;
};

/// Applies `advice` to `vm` (after setup) and `machine`'s kernel.
FeedbackReport apply_advice(const Advice& advice, jvm::Vm& vm, os::Machine& machine,
                            const FeedbackConfig& config = {});

}  // namespace viprof::guidance
