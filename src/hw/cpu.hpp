// Simulated CPU: virtual cycle clock, executing-context tracking, and the
// counter-overflow → NMI delivery path that OProfile's kernel half hangs off.
//
// The machine advances in *chunks*: the VM/OS declares "the next N abstract
// instructions execute inside this code body, costing C cycles, generating
// these auxiliary events", and the CPU distributes the events across the
// chunk, firing an NMI at the exact cycle each programmed counter overflows.
// The NMI handler's own cost is charged back to the clock *and* to the
// counters (a real HPC keeps counting during the handler), attributed to the
// profiler's kernel code — so heavy sampling visibly profiles itself, exactly
// as OProfile does.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/event.hpp"
#include "hw/perf_counter.hpp"
#include "hw/types.hpp"
#include "support/rng.hpp"

namespace viprof::hw {

/// What the profiler observes at counter overflow.
struct SampleContext {
  EventKind event = EventKind::kGlobalPowerEvents;
  Address pc = 0;
  Address caller_pc = 0;  // return address one frame up (0 = none/unknown)
  CpuMode mode = CpuMode::kUser;
  Pid pid = 0;
  Cycles cycle = 0;  // absolute cycle at which the overflow fired
};

/// The NMI handler consumes the sample and returns its own cost in cycles.
using NmiHandler = std::function<Cycles(const SampleContext&)>;

/// Code body currently executing (used to synthesise sample PCs).
/// `caller_pc` is the return address on the stack when this body was
/// entered; the profiler's call-graph mode records it alongside the PC
/// (OProfile's one-level stack unwind).
struct ExecContext {
  Address code_base = 0;
  std::uint64_t code_size = 1;
  CpuMode mode = CpuMode::kUser;
  Pid pid = 0;
  Address caller_pc = 0;
};

/// Auxiliary event counts for one chunk (fractional: the access sampler
/// produces scaled estimates; the CPU carries remainders across chunks).
struct ChunkEvents {
  std::uint64_t instructions = 0;
  double l2_misses = 0.0;
  double itlb_misses = 0.0;
  double branch_mispredicts = 0.0;

  // Representative *data* addresses that missed L2 in this chunk (from the
  // access sampler). A kObjDmiss counter overflow is delivered with its PC
  // set to one of these addresses — the memory profiler resolves it against
  // the heap's object map instead of a code map. Empty = no counter watches
  // kObjDmiss or the chunk had no misses; delivery then falls back to a
  // code PC (resolved as untracked).
  static constexpr std::uint32_t kMissAddrCap = 16;
  Address miss_addrs[kMissAddrCap] = {};
  std::uint32_t miss_addr_count = 0;
};

class Cpu {
 public:
  explicit Cpu(std::uint64_t seed = 0x1cebabe);

  Cycles now() const { return clock_; }
  PerfCounterUnit& counters() { return counters_; }
  const PerfCounterUnit& counters() const { return counters_; }

  void set_nmi_handler(NmiHandler handler) { nmi_handler_ = std::move(handler); }

  /// Code the NMI handler itself executes in (kernel); samples that fire
  /// while charging handler cost land here.
  void set_profiler_context(const ExecContext& ctx) { profiler_ctx_ = ctx; }

  void set_context(const ExecContext& ctx) { ctx_ = ctx; }
  const ExecContext& context() const { return ctx_; }

  /// Maximum PC skid in bytes (hardware samples land a little late); 0 = exact.
  void set_max_skid(std::uint32_t bytes) { max_skid_ = bytes; }

  /// Execute one chunk in the current context.
  void advance(Cycles cycles, const ChunkEvents& events);

  /// Cycles consumed by NMI handlers so far (the profiling overhead that
  /// the overhead benchmarks measure, alongside daemon/agent costs).
  Cycles nmi_overhead_cycles() const { return nmi_overhead_; }
  std::uint64_t nmi_count() const { return nmi_count_; }

 private:
  Address pick_pc(const ExecContext& ctx);
  void deliver(const SampleContext& sc);
  void charge_handler_cost(Cycles cost);

  PerfCounterUnit counters_;
  NmiHandler nmi_handler_;
  ExecContext ctx_;
  ExecContext profiler_ctx_;
  support::Xoshiro256 rng_;
  Cycles clock_ = 0;
  Cycles nmi_overhead_ = 0;
  std::uint64_t nmi_count_ = 0;
  std::uint32_t max_skid_ = 0;
  // Fractional event remainders carried across chunks.
  double l2_accum_ = 0.0;
  double itlb_accum_ = 0.0;
  double branch_accum_ = 0.0;
  double obj_accum_ = 0.0;
  std::vector<Overflow> scratch_;  // reused per advance() to avoid allocation
};

}  // namespace viprof::hw
