// Memory access pattern descriptors and the chunked access sampler.
//
// Executing real loads for every simulated instruction would make billion-
// cycle runs intractable. Instead every executing context (Java method,
// native routine, kernel path, GC) carries an AccessPattern describing its
// data locality; per execution chunk the sampler materialises a small number
// of representative addresses, pushes them through the real cache model, and
// scales the observed misses to the chunk's full access count. The cache
// state thus evolves realistically (working sets compete, GC trashes the
// cache) while cost stays proportional to chunks, not instructions.
#pragma once

#include <cstdint>

#include "hw/cache.hpp"
#include "hw/types.hpp"
#include "support/rng.hpp"

namespace viprof::hw {

struct AccessPattern {
  Address base = 0;              // start of the context's data region
  std::uint64_t working_set = 4096;  // bytes touched repeatedly
  std::uint32_t stride = 64;     // sequential stride in bytes
  double random_frac = 0.1;      // fraction of cold accesses at random offsets
  double accesses_per_op = 0.4;  // memory references per abstract instruction

  // Most references hit a small cache-resident region — the thread stack,
  // locals, the hottest objects; only the remainder walks the working set.
  // Without this split every probe touches a fresh line and miss rates
  // explode far beyond what real code exhibits. The hot region is *shared*
  // (hot_base, typically the process stack): all code in a process keeps it
  // resident together. hot_base == 0 falls back to `base`.
  double hot_frac = 0.90;
  std::uint64_t hot_bytes = 2048;
  Address hot_base = 0;
};

struct SampledAccesses {
  double accesses = 0.0;   // scaled total memory references in the chunk
  double l1_misses = 0.0;  // scaled estimate
  double l2_misses = 0.0;  // scaled estimate

  // The actual probe addresses that missed L2 in this chunk — the
  // representative *data* addresses the memory profiler attributes object
  // misses to. Bounded by the probe count, so a fixed array suffices.
  static constexpr std::uint32_t kMissAddrCap = 16;
  Address miss_addrs[kMissAddrCap] = {};
  std::uint32_t miss_addr_count = 0;
};

/// Stateful sampler: keeps a sequential cursor per call site so consecutive
/// chunks of the same context continue walking the working set.
class AccessSampler {
 public:
  explicit AccessSampler(std::uint64_t seed) : rng_(seed) {}

  /// Number of probe addresses per chunk; more probes = finer miss-rate
  /// resolution at higher simulation cost.
  static constexpr std::uint32_t kProbesPerChunk = 16;

  /// Simulates `ops` abstract instructions of a context with pattern `p`
  /// against `cache`, returning scaled access/miss estimates.
  SampledAccesses sample(const AccessPattern& p, std::uint64_t ops, CacheModel& cache);

 private:
  support::Xoshiro256 rng_;
  std::uint64_t cursor_ = 0;  // sequential offset within the working set
};

}  // namespace viprof::hw
