#include "hw/perf_counter.hpp"

#include "support/check.hpp"

namespace viprof::hw {

void PerfCounterUnit::configure(const std::vector<CounterConfig>& configs) {
  counters_.clear();
  for (auto& t : totals_) t = 0;
  for (auto& t : overflow_counts_) t = 0;
  for (const auto& cfg : configs) {
    VIPROF_CHECK(cfg.period > 0);
    counters_.push_back(Counter{cfg, cfg.period});
  }
}

bool PerfCounterUnit::watches(EventKind kind) const {
  if (!unit_enabled_) return false;
  for (const auto& c : counters_)
    if (c.config.enabled && c.config.kind == kind) return true;
  return false;
}

void PerfCounterUnit::add(EventKind kind, std::uint64_t count, std::vector<Overflow>& out) {
  if (count == 0) return;
  totals_[event_index(kind)] += count;
  if (!unit_enabled_) return;
  for (auto& c : counters_) {
    if (!c.config.enabled || c.config.kind != kind) continue;
    std::uint64_t consumed = 0;
    while (count - consumed >= c.remaining) {
      consumed += c.remaining;
      out.push_back(Overflow{kind, consumed});
      ++overflow_counts_[event_index(kind)];
      c.remaining = c.config.period;
    }
    c.remaining -= count - consumed;
  }
}

}  // namespace viprof::hw
