// Set-associative cache hierarchy model (L1D + unified L2, LRU replacement).
//
// The simulator does not execute real loads; workloads describe their memory
// behaviour as access streams (see access_pattern.hpp) which are pushed
// through this model to derive L2 miss events — the paper's BSQ Dmiss column.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/types.hpp"

namespace viprof::hw {

struct CacheLevelConfig {
  std::uint64_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
};

/// One level of cache: physically indexed, LRU within a set.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& config);

  /// Returns true on hit; on miss the line is filled (allocate-on-miss).
  bool access(Address address);

  /// Invalidate everything (e.g. on address-space switch if desired).
  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t sets() const { return set_count_; }
  const CacheLevelConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-touch stamp
    bool valid = false;
  };

  CacheLevelConfig config_;
  std::uint64_t set_count_;
  std::uint32_t line_shift_;
  std::vector<Way> ways_;  // set-major layout: set * ways + way
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

struct CacheModelConfig {
  CacheLevelConfig l1{16 * 1024, 64, 4};       // P4-ish 16KB L1D
  CacheLevelConfig l2{2 * 1024 * 1024, 64, 8}; // 2MB unified L2 (Xeon Irwindale)
};

struct AccessResult {
  bool l1_hit = false;
  bool l2_hit = false;  // meaningful only when !l1_hit
};

/// Two-level hierarchy; an L1 miss probes L2; an L2 miss counts as a memory
/// reference miss (the event the paper samples).
class CacheModel {
 public:
  explicit CacheModel(const CacheModelConfig& config = {});

  AccessResult access(Address address);

  std::uint64_t l1_misses() const { return l1_.misses(); }
  std::uint64_t l2_misses() const { return l2_.misses(); }
  std::uint64_t accesses() const { return accesses_; }

  void flush();

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  std::uint64_t accesses_ = 0;
};

}  // namespace viprof::hw
