// Fundamental simulated-hardware types shared across the stack.
#pragma once

#include <cstdint>

namespace viprof::hw {

using Address = std::uint64_t;
using Cycles = std::uint64_t;
using Pid = std::uint32_t;

/// Processor privilege mode at the time of a sample; OProfile separates
/// user-space from kernel-space hits, and the XenoProf extension adds the
/// hypervisor ring (paper Section 5 future work, implemented here).
enum class CpuMode : std::uint8_t {
  kUser,
  kKernel,
  kHypervisor,
};

inline const char* to_string(CpuMode mode) {
  switch (mode) {
    case CpuMode::kUser:       return "user";
    case CpuMode::kKernel:     return "kernel";
    case CpuMode::kHypervisor: return "hypervisor";
  }
  return "?";
}

}  // namespace viprof::hw
