#include "hw/cpu.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace viprof::hw {

Cpu::Cpu(std::uint64_t seed) : rng_(seed) {
  profiler_ctx_.mode = CpuMode::kKernel;
}

Address Cpu::pick_pc(const ExecContext& ctx) {
  const std::uint64_t size = std::max<std::uint64_t>(ctx.code_size, 1);
  std::uint64_t offset = rng_.below(size) & ~3ULL;  // instruction-aligned
  if (max_skid_ > 0) {
    offset += rng_.below(max_skid_ + 1);
    if (offset >= size) offset = size - 1;
  }
  return ctx.code_base + offset;
}

void Cpu::advance(Cycles cycles, const ChunkEvents& events) {
  VIPROF_CHECK(cycles > 0 || events.instructions == 0);
  const Cycles start = clock_;

  struct Pending {
    EventKind kind;
    Cycles at;  // absolute overflow cycle
  };
  std::vector<Pending> pending;

  auto add_kind = [&](EventKind kind, std::uint64_t count, std::uint64_t span) {
    if (count == 0) return;
    scratch_.clear();
    counters_.add(kind, count, scratch_);
    for (const Overflow& o : scratch_) {
      // Map the offset within the batch onto a cycle within the chunk.
      const Cycles at =
          start + (span == 0 ? cycles
                             : (o.offset * cycles) / std::max<std::uint64_t>(span, 1));
      pending.push_back(Pending{kind, std::min<Cycles>(at, start + cycles)});
    }
  };

  auto drain_accum = [](double& accum, double add) -> std::uint64_t {
    accum += add;
    if (accum < 1.0) return 0;
    const double whole = std::floor(accum);
    accum -= whole;
    return static_cast<std::uint64_t>(whole);
  };

  add_kind(EventKind::kGlobalPowerEvents, cycles, cycles);
  add_kind(EventKind::kInstrRetired, events.instructions, events.instructions);
  add_kind(EventKind::kBsqCacheReference, drain_accum(l2_accum_, events.l2_misses),
           cycles);
  add_kind(EventKind::kItlbMiss, drain_accum(itlb_accum_, events.itlb_misses), cycles);
  add_kind(EventKind::kBranchMispredict,
           drain_accum(branch_accum_, events.branch_mispredicts), cycles);
  // Object-miss samples share the L2-miss event stream but are delivered by
  // *data address*; only counted when a counter actually watches the kind so
  // an idle memprof build costs one predicted branch here.
  if (counters_.watches(EventKind::kObjDmiss))
    add_kind(EventKind::kObjDmiss, drain_accum(obj_accum_, events.l2_misses), cycles);

  clock_ = start + cycles;

  if (pending.empty()) return;
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.at < b.at; });
  std::uint32_t miss_cursor = 0;
  for (const Pending& p : pending) {
    SampleContext sc;
    sc.event = p.kind;
    if (p.kind == EventKind::kObjDmiss && events.miss_addr_count > 0) {
      // Rotate through the chunk's captured miss addresses; the sample PC
      // *is* the missing data address (PEBS-style data-address sampling).
      sc.pc = events.miss_addrs[miss_cursor++ % events.miss_addr_count];
      sc.caller_pc = 0;
    } else {
      sc.pc = pick_pc(ctx_);
      sc.caller_pc = p.kind == EventKind::kObjDmiss ? 0 : ctx_.caller_pc;
    }
    sc.mode = ctx_.mode;
    sc.pid = ctx_.pid;
    sc.cycle = p.at;
    deliver(sc);
  }
}

void Cpu::deliver(const SampleContext& sc) {
  ++nmi_count_;
  if (!nmi_handler_) return;
  const Cycles cost = nmi_handler_(sc);
  if (cost > 0) charge_handler_cost(cost);
}

void Cpu::charge_handler_cost(Cycles cost) {
  // The handler's cycles are real time: they advance the clock and keep the
  // counters counting. Overflows that fire during a handler are delivered
  // right after it returns (NMIs are masked while one is in flight), with a
  // PC inside the profiler's own kernel code. Each such delivery may itself
  // cost cycles; the loop converges because handler cost << sampling period.
  Cycles remaining = cost;
  int guard = 0;
  while (remaining > 0) {
    VIPROF_CHECK(++guard < 64);  // period must exceed handler cost
    nmi_overhead_ += remaining;
    scratch_.clear();
    counters_.add(EventKind::kGlobalPowerEvents, remaining, scratch_);
    const Cycles start = clock_;
    clock_ += remaining;
    Cycles follow_on = 0;
    for (const Overflow& o : scratch_) {
      SampleContext sc;
      sc.event = EventKind::kGlobalPowerEvents;
      sc.pc = pick_pc(profiler_ctx_);
      sc.caller_pc = profiler_ctx_.caller_pc;
      sc.mode = profiler_ctx_.mode;
      sc.pid = profiler_ctx_.pid;
      sc.cycle = start + o.offset;
      ++nmi_count_;
      if (nmi_handler_) follow_on += nmi_handler_(sc);
    }
    remaining = follow_on;
  }
}

}  // namespace viprof::hw
