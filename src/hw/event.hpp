// Hardware performance event kinds.
//
// Named after the Pentium 4 events the paper profiles: GLOBAL_POWER_EVENTS
// approximates elapsed (unhalted) cycles, i.e. "time"; BSQ_CACHE_REFERENCE
// configured for L2 data read/write misses is the paper's "Dmiss" column.
#pragma once

#include <array>
#include <cstdint>

namespace viprof::hw {

enum class EventKind : std::uint8_t {
  kGlobalPowerEvents,  // unhalted cycles ("time")
  kBsqCacheReference,  // L2 cache misses ("Dmiss")
  kInstrRetired,       // retired instructions
  kItlbMiss,           // instruction TLB misses
  kBranchMispredict,   // mispredicted branches
  kObjDmiss,           // L2 data misses sampled by *data address* (memprof)
};

inline constexpr std::size_t kEventKindCount = 6;

inline constexpr std::array<EventKind, kEventKindCount> kAllEventKinds = {
    EventKind::kGlobalPowerEvents, EventKind::kBsqCacheReference,
    EventKind::kInstrRetired,      EventKind::kItlbMiss,
    EventKind::kBranchMispredict,  EventKind::kObjDmiss};

inline const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kGlobalPowerEvents: return "GLOBAL_POWER_EVENTS";
    case EventKind::kBsqCacheReference: return "BSQ_CACHE_REFERENCE";
    case EventKind::kInstrRetired:      return "INSTR_RETIRED";
    case EventKind::kItlbMiss:          return "ITLB_MISS";
    case EventKind::kBranchMispredict:  return "BRANCH_MISPREDICT";
    case EventKind::kObjDmiss:          return "DMISS_OBJ";
  }
  return "UNKNOWN_EVENT";
}

inline constexpr std::size_t event_index(EventKind kind) {
  return static_cast<std::size_t>(kind);
}

}  // namespace viprof::hw
