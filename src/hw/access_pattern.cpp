#include "hw/access_pattern.hpp"

#include <algorithm>

namespace viprof::hw {

SampledAccesses AccessSampler::sample(const AccessPattern& p, std::uint64_t ops,
                                      CacheModel& cache) {
  SampledAccesses out;
  if (ops == 0 || p.accesses_per_op <= 0.0) return out;
  out.accesses = static_cast<double>(ops) * p.accesses_per_op;

  const std::uint64_t ws = std::max<std::uint64_t>(p.working_set, p.stride);
  std::uint32_t probes = kProbesPerChunk;
  // Never probe more than the chunk's scaled access count.
  if (out.accesses < probes) probes = std::max(1u, static_cast<std::uint32_t>(out.accesses));

  std::uint32_t l1_miss = 0;
  std::uint32_t l2_miss = 0;
  for (std::uint32_t i = 0; i < probes; ++i) {
    Address addr;
    if (rng_.chance(p.hot_frac)) {
      const Address hot = p.hot_base != 0 ? p.hot_base : p.base;
      addr = hot + rng_.below(std::max<std::uint64_t>(p.hot_bytes, 64));
    } else if (rng_.chance(p.random_frac)) {
      addr = p.base + rng_.below(ws);
    } else {
      cursor_ = (cursor_ + p.stride) % ws;
      addr = p.base + cursor_;
    }
    const AccessResult r = cache.access(addr);
    if (!r.l1_hit) {
      ++l1_miss;
      if (!r.l2_hit) {
        ++l2_miss;
        if (out.miss_addr_count < SampledAccesses::kMissAddrCap)
          out.miss_addrs[out.miss_addr_count++] = addr;
      }
    }
  }
  const double scale = out.accesses / static_cast<double>(probes);
  out.l1_misses = static_cast<double>(l1_miss) * scale;
  out.l2_misses = static_cast<double>(l2_miss) * scale;
  return out;
}

}  // namespace viprof::hw
