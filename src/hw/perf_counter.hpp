// Simulated hardware performance counters.
//
// Each counter is programmed with an event kind and a sampling period
// ("reset value" in OProfile terms). When `period` events have been counted
// the counter overflows; the overflow position within the added batch is
// reported so the CPU can reconstruct the exact cycle and PC of the sample.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/event.hpp"

namespace viprof::hw {

struct CounterConfig {
  EventKind kind = EventKind::kGlobalPowerEvents;
  std::uint64_t period = 90'000;  // events per sample; paper sweeps 45K/90K/450K
  bool enabled = true;
};

/// One overflow produced while adding a batch of events: `offset` events of
/// the batch had been consumed when the counter wrapped (1-based: the
/// overflow fires *on* the offset-th event).
struct Overflow {
  EventKind kind;
  std::uint64_t offset;
};

class PerfCounterUnit {
 public:
  /// Programs the unit; replaces any previous configuration.
  void configure(const std::vector<CounterConfig>& configs);

  /// True if some enabled counter watches `kind`.
  bool watches(EventKind kind) const;

  /// Counts `count` events of `kind`; appends any overflows to `out`
  /// (offsets are relative to this batch, strictly increasing).
  void add(EventKind kind, std::uint64_t count, std::vector<Overflow>& out);

  /// Total events observed per kind since configure().
  std::uint64_t total(EventKind kind) const { return totals_[event_index(kind)]; }

  /// Total overflows (== samples requested) per kind since configure().
  std::uint64_t overflows(EventKind kind) const { return overflow_counts_[event_index(kind)]; }

  void set_enabled(bool enabled) { unit_enabled_ = enabled; }
  bool enabled() const { return unit_enabled_; }

 private:
  struct Counter {
    CounterConfig config;
    std::uint64_t remaining = 0;  // events until next overflow
  };

  std::vector<Counter> counters_;
  std::uint64_t totals_[kEventKindCount] = {};
  std::uint64_t overflow_counts_[kEventKindCount] = {};
  bool unit_enabled_ = true;
};

}  // namespace viprof::hw
