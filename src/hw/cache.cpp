#include "hw/cache.hpp"

#include <bit>

#include "support/check.hpp"

namespace viprof::hw {

CacheLevel::CacheLevel(const CacheLevelConfig& config) : config_(config) {
  VIPROF_CHECK(config.line_bytes > 0 && std::has_single_bit(config.line_bytes));
  VIPROF_CHECK(config.ways > 0);
  VIPROF_CHECK(config.size_bytes % (static_cast<std::uint64_t>(config.line_bytes) * config.ways) == 0);
  set_count_ = config.size_bytes / (static_cast<std::uint64_t>(config.line_bytes) * config.ways);
  VIPROF_CHECK(set_count_ > 0 && std::has_single_bit(set_count_));
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  ways_.resize(set_count_ * config.ways);
}

bool CacheLevel::access(Address address) {
  const std::uint64_t line = address >> line_shift_;
  const std::uint64_t set = line & (set_count_ - 1);
  const std::uint64_t tag = line >> std::countr_zero(set_count_);
  Way* base = &ways_[set * config_.ways];
  ++stamp_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = stamp_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  return false;
}

void CacheLevel::flush() {
  for (auto& way : ways_) way.valid = false;
}

CacheModel::CacheModel(const CacheModelConfig& config) : l1_(config.l1), l2_(config.l2) {}

AccessResult CacheModel::access(Address address) {
  ++accesses_;
  AccessResult result;
  result.l1_hit = l1_.access(address);
  if (!result.l1_hit) result.l2_hit = l2_.access(address);
  return result;
}

void CacheModel::flush() {
  l1_.flush();
  l2_.flush();
}

}  // namespace viprof::hw
