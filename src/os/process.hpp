// A simulated user process: pid, name, and its virtual address space.
#pragma once

#include <string>

#include "hw/types.hpp"
#include "os/address_space.hpp"

namespace viprof::os {

class Process {
 public:
  Process(hw::Pid pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  hw::Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }

  AddressSpace& address_space() { return space_; }
  const AddressSpace& address_space() const { return space_; }

 private:
  hw::Pid pid_;
  std::string name_;
  AddressSpace space_;
};

}  // namespace viprof::os
