#include "os/loader.hpp"

#include "support/check.hpp"

namespace viprof::os {

Vma Loader::load_executable(Process& process, ImageId image) {
  const Image& img = registry_->get(image);
  VIPROF_CHECK(img.kind() == ImageKind::kExecutable);
  return process.address_space().map(kExecBase, page_align(img.size()), image);
}

Vma Loader::load_library(Process& process, ImageId image) {
  const Image& img = registry_->get(image);
  VIPROF_CHECK(img.kind() == ImageKind::kSharedLib);
  const hw::Address base = next_lib_;
  next_lib_ += page_align(img.size()) + kPageSize;  // guard page between libs
  return process.address_space().map(base, page_align(img.size()), image);
}

Vma Loader::map_anon(Process& process, std::uint64_t size) {
  Image& img = registry_->create("anon", ImageKind::kAnon, page_align(size));
  const hw::Address base = next_anon_;
  next_anon_ += page_align(size) + kPageSize;
  return process.address_space().map(base, page_align(size), img.id());
}

Vma Loader::map_at_anon_slot(Process& process, ImageId image) {
  const Image& img = registry_->get(image);
  const hw::Address base = next_anon_;
  next_anon_ += page_align(img.size()) + kPageSize;
  return process.address_space().map(base, page_align(img.size()), image);
}

}  // namespace viprof::os
