#include "os/image.hpp"

#include "support/check.hpp"

namespace viprof::os {

Image& ImageRegistry::create(std::string name, ImageKind kind, std::uint64_t size,
                             bool stripped) {
  const auto id = static_cast<ImageId>(images_.size());
  images_.push_back(std::make_unique<Image>(id, std::move(name), kind, size, stripped));
  return *images_.back();
}

Image& ImageRegistry::get(ImageId id) {
  VIPROF_CHECK(id < images_.size());
  return *images_[id];
}

const Image& ImageRegistry::get(ImageId id) const {
  VIPROF_CHECK(id < images_.size());
  return *images_[id];
}

const Image* ImageRegistry::find_by_name(const std::string& name) const {
  for (const auto& img : images_)
    if (img->name() == name) return img.get();
  return nullptr;
}

}  // namespace viprof::os
