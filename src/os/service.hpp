// Background services: user-level daemons that steal CPU time from the
// foreground workload on our single-core machine (the paper's testbed is a
// single-core Pentium 4). The VM polls registered services between execution
// chunks and runs whatever work they request; the OProfile/VIProf daemon is
// implemented as one of these, so its overhead flows through the same cycle
// accounting as everything else.
#pragma once

#include <optional>

#include "hw/access_pattern.hpp"
#include "hw/cpu.hpp"

namespace viprof::os {

/// One slice of daemon work: where it executes, what it costs, how it
/// touches memory.
struct WorkChunk {
  hw::ExecContext context;
  hw::Cycles cycles = 0;
  std::uint64_t ops = 0;
  hw::AccessPattern pattern;
};

class BackgroundService {
 public:
  virtual ~BackgroundService() = default;

  /// Next chunk the service wants to run, or nullopt if it is idle.
  /// Called repeatedly until idle, so a service can drain a backlog.
  virtual std::optional<WorkChunk> next_work(hw::Cycles now) = 0;
};

}  // namespace viprof::os
