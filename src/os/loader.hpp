// Deterministic program loader: lays out executables, shared libraries and
// anonymous mappings in a process address space at the conventional ia32
// addresses (exec low, libraries in the 0x40000000 region, anon/heap above,
// kernel at 0xc0000000 — matching the ranges visible in the paper's Fig. 1,
// e.g. "anon (range:0x62785000-...)").
#pragma once

#include <cstdint>

#include "os/address_space.hpp"
#include "os/image.hpp"
#include "os/process.hpp"

namespace viprof::os {

class Loader {
 public:
  static constexpr hw::Address kExecBase = 0x0804'8000;
  static constexpr hw::Address kLibBase = 0x4000'0000;
  static constexpr hw::Address kAnonBase = 0x6000'0000;
  static constexpr hw::Address kKernelBase = 0xc000'0000;
  static constexpr std::uint64_t kPageSize = 4096;

  explicit Loader(ImageRegistry& registry) : registry_(&registry) {}

  /// Maps the main executable at the canonical base.
  Vma load_executable(Process& process, ImageId image);

  /// Maps a shared library at the next page-aligned library slot.
  Vma load_library(Process& process, ImageId image);

  /// Creates an anonymous mapping (JIT heap etc.): a fresh kAnon image is
  /// registered so the mapping has an identity in profile output.
  Vma map_anon(Process& process, std::uint64_t size);

  /// Maps an already-registered image (e.g. a JVM boot image) at the next
  /// anon slot; used for regions that carry their own identity.
  Vma map_at_anon_slot(Process& process, ImageId image);

  static std::uint64_t page_align(std::uint64_t size) {
    return (size + kPageSize - 1) & ~(kPageSize - 1);
  }

 private:
  ImageRegistry* registry_;
  hw::Address next_lib_ = kLibBase;
  hw::Address next_anon_ = kAnonBase;
};

}  // namespace viprof::os
