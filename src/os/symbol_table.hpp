// Symbol tables for binary images: name + offset + size, offset-ordered,
// binary-search lookup (the core of OProfile's PC → method attribution).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace viprof::os {

struct Symbol {
  std::string name;
  std::uint64_t offset = 0;  // from image base
  std::uint64_t size = 0;
};

/// Thread-safety: find()/ordered() may be called concurrently from any
/// number of threads (the parallel resolution pipeline does); the lazy
/// sort happens once under a lock. add() and moves are exclusive.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(SymbolTable&& other) noexcept { *this = std::move(other); }
  SymbolTable& operator=(SymbolTable&& other) noexcept;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Adds a symbol; offsets may arrive unordered, the table sorts lazily.
  void add(std::string name, std::uint64_t offset, std::uint64_t size);

  /// Symbol covering `offset`, if any. Symbols must not overlap (checked
  /// at first lookup after mutation).
  std::optional<Symbol> find(std::uint64_t offset) const;

  std::size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }

  /// Offset-ordered view (forces the sort).
  const std::vector<Symbol>& ordered() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<Symbol> symbols_;
  mutable std::atomic<bool> sorted_{true};
  mutable std::mutex sort_mu_;
};

}  // namespace viprof::os
