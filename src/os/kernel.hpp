// Simulated kernel: the vmlinux image mapped at the canonical kernel base,
// a catalogue of kernel entry points workloads can "execute" (syscalls, page
// faults, scheduler, softirq), and the profiler's kernel-side symbols (NMI
// handler, buffer sync) so that profiling overhead is attributable in
// profiles just as with the real OProfile module.
#pragma once

#include <cstdint>
#include <string>

#include "hw/access_pattern.hpp"
#include "hw/cpu.hpp"
#include "hw/types.hpp"
#include "os/image.hpp"
#include "os/loader.hpp"

namespace viprof::os {

/// One kernel routine the simulation can execute: where it lives (for PC
/// attribution) and how it behaves (cycles-per-op, data locality).
struct KernelRoutine {
  std::string name;
  hw::Address base = 0;      // absolute address of the routine
  std::uint64_t size = 0;    // code bytes
  double cpi = 1.4;          // cycles per abstract instruction
  hw::AccessPattern pattern; // data-access behaviour
};

class Kernel {
 public:
  /// Builds the kernel image with a standard symbol set and registers it.
  explicit Kernel(ImageRegistry& registry);

  ImageId image() const { return image_; }
  hw::Address base() const { return Loader::kKernelBase; }
  std::uint64_t size() const { return size_; }
  bool contains(hw::Address pc) const {
    return pc >= base() && pc < base() + size_;
  }

  /// Routine by name; aborts if unknown (the symbol set is fixed at build).
  const KernelRoutine& routine(const std::string& name) const;

  /// Execution context for a routine, for Cpu::set_context.
  hw::ExecContext context(const std::string& name, hw::Pid pid) const;

  /// Image offset of an absolute kernel PC.
  std::uint64_t offset_of(hw::Address pc) const;

  /// Kernel specialisation (the VIVA cross-layer optimisation the paper's
  /// profiles are meant to guide): scales a routine's CPI, modelling a
  /// trimmed fast path compiled for the current workload. `cpi_scale` < 1
  /// speeds the routine up.
  void specialize(const std::string& name, double cpi_scale);

 private:
  void add_routine(std::string name, std::uint64_t code_size, double cpi,
                   std::uint64_t working_set, double random_frac);

  ImageRegistry* registry_;
  ImageId image_ = kInvalidImage;
  std::uint64_t size_ = 0;
  std::uint64_t cursor_ = 0;
  std::vector<KernelRoutine> routines_;
};

}  // namespace viprof::os
