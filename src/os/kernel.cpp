#include "os/kernel.hpp"

#include "support/check.hpp"

namespace viprof::os {

namespace {
// Kernel data region (above the code) used as the base for routine
// access patterns.
constexpr std::uint64_t kKernelDataOffset = 0x0100'0000;
}  // namespace

Kernel::Kernel(ImageRegistry& registry) : registry_(&registry) {
  // Routine catalogue: name, code size, CPI, data working set, random frac.
  // The set mirrors what a JVM-hosted workload touches: syscall paths,
  // memory management, the scheduler/timer, and the profiler's own module.
  add_routine("schedule", 4096, 1.6, 32 * 1024, 0.30);
  add_routine("timer_interrupt", 1024, 1.3, 4 * 1024, 0.10);
  add_routine("do_page_fault", 2048, 1.8, 64 * 1024, 0.50);
  add_routine("handle_mm_fault", 3072, 1.9, 128 * 1024, 0.60);
  add_routine("sys_read", 2048, 1.5, 64 * 1024, 0.40);
  add_routine("sys_write", 2048, 1.5, 64 * 1024, 0.40);
  add_routine("sys_futex", 1536, 1.4, 8 * 1024, 0.20);
  add_routine("sys_gettimeofday", 512, 1.1, 1024, 0.05);
  add_routine("do_softirq", 1536, 1.4, 16 * 1024, 0.25);
  add_routine("copy_to_user", 1024, 1.2, 256 * 1024, 0.05);
  add_routine("copy_from_user", 1024, 1.2, 256 * 1024, 0.05);
  add_routine("kmalloc", 1280, 1.5, 32 * 1024, 0.35);
  add_routine("kfree", 1024, 1.4, 32 * 1024, 0.35);
  // Profiler kernel half (OProfile module): NMI handler + buffer sync.
  add_routine("oprofile_nmi_handler", 768, 1.2, 2 * 1024, 0.05);
  add_routine("oprofile_buffer_sync", 1024, 1.3, 16 * 1024, 0.10);

  Image& img = registry.create("vmlinux", ImageKind::kKernel, cursor_);
  image_ = img.id();
  size_ = cursor_;
  for (const auto& r : routines_) {
    img.symbols().add(r.name, r.base - Loader::kKernelBase, r.size);
  }
}

void Kernel::add_routine(std::string name, std::uint64_t code_size, double cpi,
                         std::uint64_t working_set, double random_frac) {
  KernelRoutine r;
  r.name = std::move(name);
  r.base = Loader::kKernelBase + cursor_;
  r.size = code_size;
  r.cpi = cpi;
  r.pattern.base = Loader::kKernelBase + kKernelDataOffset + cursor_ * 16;
  r.pattern.working_set = working_set;
  r.pattern.stride = 64;
  r.pattern.random_frac = random_frac;
  r.pattern.accesses_per_op = 0.45;
  cursor_ += code_size;
  routines_.push_back(std::move(r));
}

const KernelRoutine& Kernel::routine(const std::string& name) const {
  for (const auto& r : routines_)
    if (r.name == name) return r;
  VIPROF_CHECK(false && "unknown kernel routine");
  __builtin_unreachable();
}

hw::ExecContext Kernel::context(const std::string& name, hw::Pid pid) const {
  const KernelRoutine& r = routine(name);
  return hw::ExecContext{r.base, r.size, hw::CpuMode::kKernel, pid};
}

std::uint64_t Kernel::offset_of(hw::Address pc) const {
  VIPROF_CHECK(contains(pc));
  return pc - base();
}

void Kernel::specialize(const std::string& name, double cpi_scale) {
  VIPROF_CHECK(cpi_scale > 0.0);
  for (auto& r : routines_) {
    if (r.name == name) {
      r.cpi *= cpi_scale;
      return;
    }
  }
  VIPROF_CHECK(false && "unknown kernel routine");
}

}  // namespace viprof::os
