#include "os/address_space.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace viprof::os {

Vma AddressSpace::map(hw::Address start, std::uint64_t size, ImageId image,
                             std::uint64_t file_offset) {
  VIPROF_CHECK(size > 0);
  Vma vma{start, start + size, image, file_offset};
  auto it = std::lower_bound(vmas_.begin(), vmas_.end(), vma.start,
                             [](const Vma& v, hw::Address s) { return v.start < s; });
  if (it != vmas_.begin()) VIPROF_CHECK(std::prev(it)->end <= vma.start);
  if (it != vmas_.end()) VIPROF_CHECK(vma.end <= it->start);
  it = vmas_.insert(it, vma);
  return *it;
}

void AddressSpace::unmap(hw::Address start) {
  auto it = std::lower_bound(vmas_.begin(), vmas_.end(), start,
                             [](const Vma& v, hw::Address s) { return v.start < s; });
  VIPROF_CHECK(it != vmas_.end() && it->start == start);
  vmas_.erase(it);
}

std::optional<Vma> AddressSpace::find(hw::Address address) const {
  auto it = std::upper_bound(vmas_.begin(), vmas_.end(), address,
                             [](hw::Address a, const Vma& v) { return a < v.start; });
  if (it == vmas_.begin()) return std::nullopt;
  --it;
  if (it->contains(address)) return *it;
  return std::nullopt;
}

std::optional<std::uint64_t> AddressSpace::image_offset(hw::Address pc) const {
  const auto vma = find(pc);
  if (!vma) return std::nullopt;
  return vma->file_offset + (pc - vma->start);
}

}  // namespace viprof::os
