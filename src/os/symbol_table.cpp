#include "os/symbol_table.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace viprof::os {

SymbolTable& SymbolTable::operator=(SymbolTable&& other) noexcept {
  if (this != &other) {
    // Moves require exclusive access to both sides, like add(); the mutex
    // itself is not transferred.
    symbols_ = std::move(other.symbols_);
    sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    other.sorted_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

void SymbolTable::add(std::string name, std::uint64_t offset, std::uint64_t size) {
  symbols_.push_back(Symbol{std::move(name), offset, size});
  sorted_.store(false, std::memory_order_release);
}

void SymbolTable::ensure_sorted() const {
  // Double-checked: concurrent readers race here only until the first
  // lookup after a mutation completes the sort.
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(sort_mu_);
  if (sorted_.load(std::memory_order_relaxed)) return;
  std::sort(symbols_.begin(), symbols_.end(),
            [](const Symbol& a, const Symbol& b) { return a.offset < b.offset; });
  for (std::size_t i = 1; i < symbols_.size(); ++i) {
    VIPROF_CHECK(symbols_[i - 1].offset + symbols_[i - 1].size <= symbols_[i].offset);
  }
  sorted_.store(true, std::memory_order_release);
}

std::optional<Symbol> SymbolTable::find(std::uint64_t offset) const {
  ensure_sorted();
  auto it = std::upper_bound(
      symbols_.begin(), symbols_.end(), offset,
      [](std::uint64_t off, const Symbol& s) { return off < s.offset; });
  if (it == symbols_.begin()) return std::nullopt;
  --it;
  if (offset < it->offset + it->size) return *it;
  return std::nullopt;
}

const std::vector<Symbol>& SymbolTable::ordered() const {
  ensure_sorted();
  return symbols_;
}

}  // namespace viprof::os
