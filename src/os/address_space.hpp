// Per-process virtual address space: an ordered set of VMAs mapping address
// ranges to images. This is the structure OProfile's kernel half walks to
// turn a sampled PC into (image, offset).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/types.hpp"
#include "os/image.hpp"

namespace viprof::os {

struct Vma {
  hw::Address start = 0;
  hw::Address end = 0;  // exclusive
  ImageId image = kInvalidImage;
  std::uint64_t file_offset = 0;  // image offset corresponding to `start`

  bool contains(hw::Address a) const { return a >= start && a < end; }
  std::uint64_t size() const { return end - start; }
};

class AddressSpace {
 public:
  /// Maps [start, start+size) to `image` at `file_offset`.
  /// The range must not overlap an existing mapping. Returns a *copy* of
  /// the new VMA: the internal vector may relocate on later mappings.
  Vma map(hw::Address start, std::uint64_t size, ImageId image,
          std::uint64_t file_offset = 0);

  /// Removes the mapping that starts exactly at `start` (must exist).
  void unmap(hw::Address start);

  /// VMA containing `address`, if mapped.
  std::optional<Vma> find(hw::Address address) const;

  /// Image offset for a PC: VMA file_offset + (pc - VMA start).
  std::optional<std::uint64_t> image_offset(hw::Address pc) const;

  const std::vector<Vma>& vmas() const { return vmas_; }

 private:
  std::vector<Vma> vmas_;  // kept sorted by start
};

}  // namespace viprof::os
