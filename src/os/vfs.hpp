// Tiny in-memory virtual filesystem.
//
// The real VIProf writes sample files, JIT code maps and RVM.map to disk and
// reads them back in the post-processing tools. Routing that traffic through
// an in-memory VFS keeps the whole pipeline hermetic and testable while
// preserving the architectural boundary: the daemon and the post-processing
// tools communicate *only* through files, never shared memory.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace viprof::os {

class Vfs {
 public:
  void write(const std::string& path, std::string contents);
  void append(const std::string& path, const std::string& contents);
  bool exists(const std::string& path) const;
  void remove(const std::string& path);

  /// Contents, or nullopt if the file does not exist.
  std::optional<std::string> read(const std::string& path) const;

  /// Paths with the given prefix, lexicographically ordered.
  std::vector<std::string> list(const std::string& prefix) const;

  std::size_t file_count() const { return files_.size(); }
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Materialises the VFS (or the subtree under `prefix`) into a host
  /// directory; used by the CLI tools to hand sessions to offline
  /// post-processing, mirroring OProfile's on-disk sample tree.
  void export_to_directory(const std::string& host_dir,
                           const std::string& prefix = "") const;

  /// Loads every regular file under `host_dir` into the VFS (paths are
  /// relative to `host_dir`).
  void import_from_directory(const std::string& host_dir);

 private:
  std::map<std::string, std::string> files_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace viprof::os
