// Tiny in-memory virtual filesystem.
//
// The real VIProf writes sample files, JIT code maps and RVM.map to disk and
// reads them back in the post-processing tools. Routing that traffic through
// an in-memory VFS keeps the whole pipeline hermetic and testable while
// preserving the architectural boundary: the daemon and the post-processing
// tools communicate *only* through files, never shared memory.
//
// Writes can fail: when a support::FaultInjector is installed every
// write/append consults it and may be rejected (EIO/ENOSPC) or torn (only a
// prefix of the bytes lands). Callers that must not lose data check the
// returned IoStatus and retry/spill; readers are expected to tolerate torn
// files (see SampleLogReader and CodeMapFile::salvage).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace viprof::support {
class Counter;
class FaultInjector;
class Telemetry;
}

namespace viprof::os {

enum class IoStatus : std::uint8_t {
  kOk,
  kIoError,  // nothing written
  kTorn,     // a prefix was written, the rest lost
  kNoSpace,  // nothing written; retrying will not help
};

inline const char* to_string(IoStatus s) {
  switch (s) {
    case IoStatus::kOk:      return "ok";
    case IoStatus::kIoError: return "io-error";
    case IoStatus::kTorn:    return "torn";
    case IoStatus::kNoSpace: return "no-space";
  }
  return "?";
}

class Vfs {
 public:
  IoStatus write(const std::string& path, std::string contents);
  IoStatus append(const std::string& path, const std::string& contents);
  bool exists(const std::string& path) const;
  void remove(const std::string& path);

  /// Atomic rename: `to` is replaced in one step, or nothing changes.
  /// kIoError when `from` does not exist or an injected fault rejects the
  /// operation — a rename is metadata, so it can fail but never tear
  /// (injected torn-write faults are reported as kIoError too).
  IoStatus rename(const std::string& from, const std::string& to);

  /// Contents, or nullopt if the file does not exist.
  std::optional<std::string> read(const std::string& path) const;

  /// Paths with the given prefix, lexicographically ordered.
  std::vector<std::string> list(const std::string& prefix) const;

  std::size_t file_count() const { return files_.size(); }
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Installs (or, with nullptr, removes) the fault injector consulted on
  /// every write. The injector is not owned.
  void set_fault_injector(support::FaultInjector* injector);
  support::FaultInjector* fault_injector() const { return fault_; }

  /// Wires the vfs.* registry counters (write/byte traffic). Write *fault*
  /// outcomes are deliberately not counted here: the FaultInjector owns the
  /// fault.* namespace, so each injected fault is counted exactly once (see
  /// DESIGN.md §8). Installing a fault injector re-binds it to the same
  /// registry. Not owned; nullptr detaches.
  void set_telemetry(support::Telemetry* telemetry);

  /// Materialises the VFS (or the subtree under `prefix`) into a host
  /// directory; used by the CLI tools to hand sessions to offline
  /// post-processing, mirroring OProfile's on-disk sample tree. Each file
  /// is published atomically (atomic_write_file), so a reader never sees a
  /// half-written artifact and a crash mid-export leaves any previous
  /// version of a file intact.
  void export_to_directory(const std::string& host_dir,
                           const std::string& prefix = "") const;

  /// export_to_directory plus deletion: host files under `host_dir` that no
  /// longer exist in the VFS are removed, so the directory mirrors the VFS
  /// exactly (the store tools use this — compaction must retire segment
  /// files on the host too, not just in memory).
  void sync_to_directory(const std::string& host_dir) const;

  /// Loads every regular file under `host_dir` into the VFS (paths are
  /// relative to `host_dir`).
  void import_from_directory(const std::string& host_dir);

 private:
  std::map<std::string, std::string> files_;
  std::uint64_t bytes_written_ = 0;
  support::FaultInjector* fault_ = nullptr;
  support::Telemetry* telemetry_ = nullptr;
  support::Counter* ctr_writes_ = nullptr;   // vfs.writes
  support::Counter* ctr_bytes_ = nullptr;    // vfs.bytes_written
};

/// Atomic publish of one host file: write `<path>.tmp`, then rename over
/// `path`. A crash mid-write leaves the previous `path` untouched (the §7
/// posture applied to host exports). False when the write or rename fails.
bool atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace viprof::os
