#include "os/process.hpp"

// Process is currently header-only; this TU anchors the library target.
