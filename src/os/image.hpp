// Binary images: executables, shared libraries, the kernel, the JVM boot
// image, and anonymous (JIT heap) regions.
//
// OProfile attributes a sample to (image, symbol); which symbols are
// *visible* depends on the tool: a stripped library reports "(no symbols)",
// the Jikes boot image is opaque to stock OProfile but readable by VIProf
// via its RVM.map. The registry owns all images; everything else refers to
// them by id.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "os/symbol_table.hpp"

namespace viprof::os {

using ImageId = std::uint32_t;
inline constexpr ImageId kInvalidImage = ~0u;

enum class ImageKind : std::uint8_t {
  kExecutable,
  kSharedLib,
  kKernel,
  kBootImage,  // JVM boot image (RVM.code.image); symbols live in RVM.map
  kAnon,       // anonymous mapping (JIT heap) — no file, no symbols
};

inline const char* to_string(ImageKind kind) {
  switch (kind) {
    case ImageKind::kExecutable: return "executable";
    case ImageKind::kSharedLib:  return "shared-lib";
    case ImageKind::kKernel:     return "kernel";
    case ImageKind::kBootImage:  return "boot-image";
    case ImageKind::kAnon:       return "anon";
  }
  return "unknown";
}

class Image {
 public:
  Image(ImageId id, std::string name, ImageKind kind, std::uint64_t size,
        bool stripped = false)
      : id_(id), name_(std::move(name)), kind_(kind), size_(size), stripped_(stripped) {}

  ImageId id() const { return id_; }
  const std::string& name() const { return name_; }
  ImageKind kind() const { return kind_; }
  std::uint64_t size() const { return size_; }

  /// True if the on-disk file carries no symbol table ("(no symbols)") —
  /// distinct from kAnon/kBootImage whose opacity is structural.
  bool stripped() const { return stripped_; }

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

 private:
  ImageId id_;
  std::string name_;
  ImageKind kind_;
  std::uint64_t size_;
  bool stripped_;
  SymbolTable symbols_;
};

class ImageRegistry {
 public:
  Image& create(std::string name, ImageKind kind, std::uint64_t size,
                bool stripped = false);

  Image& get(ImageId id);
  const Image& get(ImageId id) const;
  const Image* find_by_name(const std::string& name) const;
  std::size_t count() const { return images_.size(); }

 private:
  std::vector<std::unique_ptr<Image>> images_;
};

}  // namespace viprof::os
