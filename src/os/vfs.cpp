#include "os/vfs.hpp"

#include <filesystem>
#include <fstream>

#include "support/fault.hpp"
#include "support/telemetry.hpp"

namespace viprof::os {

namespace fs = std::filesystem;

namespace {

IoStatus consult(support::FaultInjector* fault, const std::string& path,
                 std::size_t size, std::size_t& kept) {
  kept = size;
  if (fault == nullptr) return IoStatus::kOk;
  const auto outcome = fault->on_write(path, size);
  using Result = support::FaultInjector::WriteOutcome::Result;
  switch (outcome.result) {
    case Result::kOk:      return IoStatus::kOk;
    case Result::kError:   kept = 0; return IoStatus::kIoError;
    case Result::kNoSpace: kept = 0; return IoStatus::kNoSpace;
    case Result::kTorn:    kept = outcome.kept_bytes; return IoStatus::kTorn;
  }
  return IoStatus::kOk;
}

}  // namespace

void Vfs::set_fault_injector(support::FaultInjector* injector) {
  fault_ = injector;
  // The injector reports injected faults into the same registry; counting
  // lives there (fault.*), never here, so a fault is counted exactly once.
  if (fault_ != nullptr) fault_->bind_telemetry(telemetry_);
}

void Vfs::set_telemetry(support::Telemetry* telemetry) {
  telemetry_ = telemetry;
  ctr_writes_ = telemetry ? &telemetry->counter("vfs.writes") : nullptr;
  ctr_bytes_ = telemetry ? &telemetry->counter("vfs.bytes_written") : nullptr;
  if (fault_ != nullptr) fault_->bind_telemetry(telemetry_);
}

IoStatus Vfs::write(const std::string& path, std::string contents) {
  std::size_t kept = 0;
  if (ctr_writes_ != nullptr) ctr_writes_->inc();
  const IoStatus status = consult(fault_, path, contents.size(), kept);
  if (status == IoStatus::kIoError || status == IoStatus::kNoSpace) return status;
  if (status == IoStatus::kTorn) contents.resize(kept);
  bytes_written_ += contents.size();
  if (ctr_bytes_ != nullptr) ctr_bytes_->inc(contents.size());
  files_[path] = std::move(contents);
  return status;
}

IoStatus Vfs::append(const std::string& path, const std::string& contents) {
  std::size_t kept = 0;
  if (ctr_writes_ != nullptr) ctr_writes_->inc();
  const IoStatus status = consult(fault_, path, contents.size(), kept);
  if (status == IoStatus::kIoError || status == IoStatus::kNoSpace) return status;
  bytes_written_ += kept;
  if (ctr_bytes_ != nullptr) ctr_bytes_->inc(kept);
  files_[path].append(contents, 0, kept);
  return status;
}

bool Vfs::exists(const std::string& path) const { return files_.count(path) != 0; }

void Vfs::remove(const std::string& path) { files_.erase(path); }

IoStatus Vfs::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return IoStatus::kIoError;
  if (from == to) return IoStatus::kOk;
  if (fault_ != nullptr) {
    // A rename moves metadata, not bytes: any injected fault rejects it
    // whole (kNoSpace stays kNoSpace so callers can tell "retrying will not
    // help"); it can never land torn.
    const auto outcome = fault_->on_write(to, it->second.size());
    using Result = support::FaultInjector::WriteOutcome::Result;
    if (outcome.result == Result::kNoSpace) return IoStatus::kNoSpace;
    if (outcome.result != Result::kOk) return IoStatus::kIoError;
  }
  files_[to] = std::move(it->second);
  files_.erase(from);
  return IoStatus::kOk;
}

std::optional<std::string> Vfs::read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

bool atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  return !ec;
}

void Vfs::export_to_directory(const std::string& host_dir,
                              const std::string& prefix) const {
  for (const auto& [path, contents] : files_) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    const fs::path target = fs::path(host_dir) / path;
    fs::create_directories(target.parent_path());
    atomic_write_file(target.string(), contents);
  }
}

void Vfs::sync_to_directory(const std::string& host_dir) const {
  export_to_directory(host_dir);
  const fs::path root(host_dir);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return;
  std::vector<fs::path> stale;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    if (files_.count(rel) == 0) stale.push_back(entry.path());
  }
  for (const fs::path& p : stale) fs::remove(p, ec);
}

void Vfs::import_from_directory(const std::string& host_dir) {
  const fs::path root(host_dir);
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    write(fs::relative(entry.path(), root).generic_string(), std::move(contents));
  }
}

std::vector<std::string> Vfs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

}  // namespace viprof::os
