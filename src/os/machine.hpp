// The assembled testbed: one simulated machine = CPU + caches + kernel +
// image registry + filesystem + processes. Mirrors the paper's platform
// (single-core Pentium 4 Xeon, 3.4 GHz, Linux 2.6) closely enough that
// "seconds" can be reported as cycles / clock rate.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/access_pattern.hpp"
#include "hw/cache.hpp"
#include "hw/cpu.hpp"
#include "os/image.hpp"
#include "os/kernel.hpp"
#include "os/loader.hpp"
#include "os/process.hpp"
#include "os/vfs.hpp"
#include "support/telemetry.hpp"

namespace viprof::os {

struct MachineConfig {
  std::uint64_t seed = 0x2007;
  double clock_ghz = 3.4;  // the paper's 3.4 GHz Xeon
  hw::CacheModelConfig cache;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = {})
      : config_(config),
        kernel_(registry_),
        cpu_(config.seed),
        cache_(config.cache),
        sampler_(config.seed ^ 0xacce55) {
    vfs_.set_telemetry(&telemetry_);
  }

  const MachineConfig& config() const { return config_; }

  ImageRegistry& registry() { return registry_; }
  const ImageRegistry& registry() const { return registry_; }
  Vfs& vfs() { return vfs_; }
  const Vfs& vfs() const { return vfs_; }
  Kernel& kernel() { return kernel_; }
  const Kernel& kernel() const { return kernel_; }
  hw::Cpu& cpu() { return cpu_; }
  const hw::Cpu& cpu() const { return cpu_; }

  /// Self-telemetry hub (metrics + trace spans) for everything running on
  /// this machine. Mutable through const access: recording observations
  /// does not change simulated behaviour, and read-only components (the
  /// offline Resolver) must still be able to count their own work.
  support::Telemetry& telemetry() const { return telemetry_; }
  hw::CacheModel& cache() { return cache_; }
  hw::AccessSampler& sampler() { return sampler_; }
  Loader& loader() { return loader_; }

  Process& spawn(const std::string& name) {
    const auto pid = static_cast<hw::Pid>(processes_.size() + 100);
    processes_.push_back(std::make_unique<Process>(pid, name));
    return *processes_.back();
  }

  Process* find_process(hw::Pid pid) {
    for (auto& p : processes_)
      if (p->pid() == pid) return p.get();
    return nullptr;
  }

  const Process* find_process(hw::Pid pid) const {
    for (const auto& p : processes_)
      if (p->pid() == pid) return p.get();
    return nullptr;
  }

  const std::vector<std::unique_ptr<Process>>& processes() const { return processes_; }

  /// Virtual seconds elapsed, at the configured clock rate.
  double seconds() const {
    return static_cast<double>(cpu_.now()) / (config_.clock_ghz * 1e9);
  }

  /// Optional hypervisor beneath the kernel (the Xen extension). The xen
  /// module registers its image/range here so mode- and range-based sample
  /// classification works without core depending on xen.
  struct HypervisorRange {
    ImageId image = kInvalidImage;
    hw::Address base = 0;
    std::uint64_t size = 0;
    bool contains(hw::Address pc) const { return pc >= base && pc < base + size; }
  };

  void set_hypervisor(const HypervisorRange& range) { hypervisor_ = range; }
  const std::optional<HypervisorRange>& hypervisor() const { return hypervisor_; }

 private:
  MachineConfig config_;
  mutable support::Telemetry telemetry_;
  ImageRegistry registry_;
  Vfs vfs_;
  Kernel kernel_;
  hw::Cpu cpu_;
  hw::CacheModel cache_;
  hw::AccessSampler sampler_;
  Loader loader_{registry_};
  std::vector<std::unique_ptr<Process>> processes_;
  std::optional<HypervisorRange> hypervisor_;
};

}  // namespace viprof::os
