#include "support/histogram.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::support {

Histogram::Histogram(double lo, double width, std::size_t count)
    : lo_(lo), width_(width), buckets_(count, 0) {
  VIPROF_CHECK(width > 0.0);
  VIPROF_CHECK(count > 0);
}

void Histogram::add(double value, std::uint64_t weight) {
  total_ += weight;
  if (value < lo_) {
    underflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>((value - lo_) / width_);
  if (idx >= buckets_.size()) {
    overflow_ += weight;
    return;
  }
  buckets_[idx] += weight;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t acc = underflow_;
  if (acc >= target) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i];
    if (acc >= target) return lo_ + (static_cast<double>(i) + 0.5) * width_;
  }
  return lo_ + static_cast<double>(buckets_.size()) * width_;
}

std::string Histogram::render(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto b : buckets_) peak = std::max(peak, b);
  std::string out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double edge = lo_ + static_cast<double>(i) * width_;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(buckets_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out += pad_left(fixed(edge, 1), 12);
    out += " | ";
    out += std::string(bar, '#');
    out += ' ';
    out += std::to_string(buckets_[i]);
    out += '\n';
  }
  return out;
}

}  // namespace viprof::support
