// Small text-formatting helpers used by the report writers.
//
// The post-processing tools print oprofile-style fixed-width tables; these
// helpers keep that formatting in one place and out of the report logic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace viprof::support {

/// Fixed-point decimal: value with `decimals` digits after the point,
/// e.g. fixed(3.14159, 4) == "3.1416".
std::string fixed(double value, int decimals);

/// Left-pad `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Hexadecimal address with 0x prefix, lower case, no leading zeros.
std::string hex(std::uint64_t value);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// FNV-1a 32-bit hash; the record/file checksum used by the crash-consistent
/// sample-log and code-map framing. Not cryptographic — it only has to catch
/// torn writes and bit rot, like the crc fields in real trace formats.
inline std::uint32_t fnv1a(const char* data, std::size_t size) {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x01000193u;
  }
  return h;
}

inline std::uint32_t fnv1a(const std::string& s) { return fnv1a(s.data(), s.size()); }

/// Simple column-aligned table writer: set headers, append rows, render.
/// Numeric-looking cells are right-aligned; text cells left-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace viprof::support
