// Small text-formatting helpers used by the report writers.
//
// The post-processing tools print oprofile-style fixed-width tables; these
// helpers keep that formatting in one place and out of the report logic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/hash.hpp"  // fnv1a lived here before support/hash.hpp existed

namespace viprof::support {

/// Fixed-point decimal: value with `decimals` digits after the point,
/// e.g. fixed(3.14159, 4) == "3.1416".
std::string fixed(double value, int decimals);

/// Left-pad `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Hexadecimal address with 0x prefix, lower case, no leading zeros.
std::string hex(std::uint64_t value);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Simple column-aligned table writer: set headers, append rows, render.
/// Numeric-looking cells are right-aligned; text cells left-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace viprof::support
