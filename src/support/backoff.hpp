// One retry policy for every retry loop in the tree.
//
// PR 1 grew two hand-rolled retry loops (the daemon's flush
// retry-with-doubling, the agent's fixed-cost map-write retry) and the
// fleet router needs a third — jittered exponential backoff with a total
// timeout budget. Rather than a third ad-hoc loop, Backoff is the single
// tested policy all of them instantiate: an attempt-bounded, optionally
// capped and jittered geometric delay schedule. All randomness flows
// through a caller-supplied Xoshiro256, so a retry schedule is exactly
// reproducible from its seed — the property the fleet's determinism
// acceptance test (identical fleet.retried.* counters across reruns)
// leans on.
//
// Usage:
//   Backoff backoff(config, &rng);
//   while (!attempt_succeeded()) {
//     const auto delay = backoff.next();
//     if (!delay) break;          // attempts or budget exhausted: give up
//     charge_or_sleep(*delay);
//   }
#pragma once

#include <cstdint>
#include <optional>

#include "support/rng.hpp"

namespace viprof::support {

struct BackoffConfig {
  /// Nominal delay of the first retry (cost units are the caller's:
  /// simulated cycles for the daemon, abstract send-delay for the router).
  std::uint64_t initial = 1'000;
  /// Each subsequent nominal delay is the previous times this.
  double multiplier = 2.0;
  /// Per-delay ceiling on the nominal delay; 0 = uncapped.
  std::uint64_t cap = 0;
  /// Jitter as a fraction of the nominal delay: the actual delay is drawn
  /// uniformly from [nominal*(1-jitter), nominal*(1+jitter)]. 0 (or a null
  /// rng) disables jitter entirely — the legacy deterministic schedules.
  double jitter = 0.0;
  /// Retries allowed before next() reports exhaustion.
  std::size_t max_attempts = 3;
  /// Total delay budget across all retries; a retry whose delay would
  /// overrun the budget is refused (timeout). 0 = unlimited.
  std::uint64_t budget = 0;
};

class Backoff {
 public:
  explicit Backoff(const BackoffConfig& config, Xoshiro256* rng = nullptr) noexcept
      : config_(config), rng_(rng), nominal_(config.initial) {
    clamp_nominal();
  }

  /// Delay to charge before the next retry, or nullopt when the policy is
  /// exhausted (max_attempts reached, or the budget cannot cover the next
  /// delay). Exhaustion is sticky until reset().
  std::optional<std::uint64_t> next() noexcept {
    if (exhausted_ || attempts_ >= config_.max_attempts) {
      exhausted_ = true;
      return std::nullopt;
    }
    std::uint64_t delay = nominal_;
    if (config_.jitter > 0.0 && rng_ != nullptr && delay > 0) {
      // Uniform in [nominal*(1-j), nominal*(1+j)], never negative.
      const double j = config_.jitter > 1.0 ? 1.0 : config_.jitter;
      const double factor = 1.0 - j + 2.0 * j * rng_->uniform();
      delay = static_cast<std::uint64_t>(static_cast<double>(delay) * factor);
    }
    if (config_.budget != 0 && spent_ + delay > config_.budget) {
      exhausted_ = true;  // timeout: the budget cannot cover this retry
      return std::nullopt;
    }
    ++attempts_;
    spent_ += delay;
    nominal_ = static_cast<std::uint64_t>(static_cast<double>(nominal_) *
                                          config_.multiplier);
    if (nominal_ == 0) nominal_ = 1;
    clamp_nominal();
    return delay;
  }

  /// Rearms the policy for a fresh operation (attempts, spend, schedule).
  void reset() noexcept {
    attempts_ = 0;
    spent_ = 0;
    nominal_ = config_.initial;
    exhausted_ = false;
    clamp_nominal();
  }

  std::size_t attempts() const noexcept { return attempts_; }
  std::uint64_t spent() const noexcept { return spent_; }
  bool exhausted() const noexcept { return exhausted_; }
  const BackoffConfig& config() const noexcept { return config_; }

 private:
  void clamp_nominal() noexcept {
    if (config_.cap != 0 && nominal_ > config_.cap) nominal_ = config_.cap;
  }

  BackoffConfig config_;
  Xoshiro256* rng_;  // not owned; nullptr = no jitter
  std::uint64_t nominal_;
  std::size_t attempts_ = 0;
  std::uint64_t spent_ = 0;
  bool exhausted_ = false;
};

}  // namespace viprof::support
