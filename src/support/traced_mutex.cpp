#include "support/traced_mutex.hpp"

#include <string>

namespace viprof::support::detail {

void LockInstrumentation::attach(Telemetry& telemetry) {
  if (handles_.load(std::memory_order_acquire) != nullptr) return;  // idempotent
  auto h = std::make_unique<LockTelemetry>();
  const std::string base = std::string("lock.") + name_;
  h->acquired = &telemetry.counter(base + ".acquired");
  h->contended = &telemetry.counter(base + ".contended");
  // 0–128 µs in 2 µs buckets; longer waits saturate into the overflow
  // bucket, where the summary clamps percentiles to the exact max.
  h->wait_ns = &telemetry.histogram(base + ".wait_ns", 0.0, 2000.0, 64);
  h->tracer = &telemetry.spans();
  storage_ = std::move(h);
  handles_.store(storage_.get(), std::memory_order_release);
}

}  // namespace viprof::support::detail
