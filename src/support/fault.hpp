// Deterministic fault injection for the storage and process layers.
//
// Production tracing systems treat lost and torn events as first-class,
// counted outcomes; to test that the whole VIProf stack degrades gracefully
// the simulator needs a way to *cause* those outcomes on demand and
// reproducibly. The FaultInjector is consulted by the Vfs on every write and
// by the daemon/agent on their scheduling paths. Faults are driven either by
// explicit rules (fail the Nth write whose path matches a prefix) or by a
// seeded probability, so a failing run is replayable from its seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace viprof::support {

class Telemetry;
class Counter;

enum class FaultKind : std::uint8_t {
  kWriteError,  // the write is rejected outright (EIO)
  kTornWrite,   // only a prefix of the bytes reaches storage
  kNoSpace,     // ENOSPC: rejected, and retrying will not help
};

/// Simulated processes the injector can kill at a chosen cycle. kClient is
/// a streaming profile-service client; "killing" it models a disconnect
/// mid-stream (the cycle argument counts frames sent, not cycles).
/// kCompactor is the profile store's write path (ingest/seal/compact); its
/// cycle argument counts store kill checkpoints, not cycles. kFleet is the
/// fleet router's send path: its cycle argument counts fleet checkpoints
/// (one per frame routed toward a shard), and the kill takes down the
/// shard process currently being streamed to (DESIGN.md §12).
enum class FaultComponent : std::uint8_t { kDaemon, kAgent, kClient, kCompactor, kFleet };
inline constexpr std::size_t kFaultComponentCount = 5;

/// One injection rule. A write matches when its path starts with
/// `path_prefix`; the first `skip` matching writes pass through, then up to
/// `count` faults of `kind` fire, each with `probability` (a seeded coin,
/// so < 1.0 is still deterministic).
struct FaultRule {
  std::string path_prefix;
  FaultKind kind = FaultKind::kWriteError;
  std::uint64_t skip = 0;
  std::uint64_t count = ~0ull;
  double probability = 1.0;
  double torn_keep_frac = 0.5;  // kTornWrite: fraction of bytes that land
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xfa017) : rng_(seed) {}

  void add_rule(const FaultRule& rule) { rules_.push_back({rule, 0, 0}); }

  /// ENOSPC model: total bytes the "disk" accepts before every further
  /// write fails with kNoSpace. ~0 (default) = unlimited.
  void set_capacity_bytes(std::uint64_t cap) { capacity_bytes_ = cap; }

  struct WriteOutcome {
    enum class Result : std::uint8_t { kOk, kError, kTorn, kNoSpace };
    Result result = Result::kOk;
    std::size_t kept_bytes = 0;  // kTorn: prefix length that landed
  };

  /// Consulted by the Vfs for every write/append of `size` bytes to `path`.
  WriteOutcome on_write(const std::string& path, std::size_t size);

  /// Schedules `component` to die at simulated cycle `at_cycle` (one-shot).
  void schedule_kill(FaultComponent component, std::uint64_t at_cycle);

  /// True once `now` has reached the scheduled kill; consumes the schedule
  /// so a later restart of the component is not instantly re-killed.
  bool should_kill(FaultComponent component, std::uint64_t now);

  struct Stats {
    std::uint64_t writes_seen = 0;
    std::uint64_t write_errors = 0;
    std::uint64_t torn_writes = 0;
    std::uint64_t enospc_errors = 0;
    std::uint64_t kills = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Mirrors the injector's counts into a Telemetry registry under the
  /// `fault.*` namespace. The injector is the *only* writer of those
  /// counters — the Vfs and the components it damages keep their own
  /// per-layer views (daemon.flush.*, agent.map.*) but never re-count a
  /// fault into fault.*, so each injected fault appears exactly once
  /// there. Re-binding to the same registry is a no-op; nullptr detaches.
  void bind_telemetry(Telemetry* telemetry);

  /// Injected faults so far (all kinds).
  std::uint64_t faults_injected() const {
    return stats_.write_errors + stats_.torn_writes + stats_.enospc_errors;
  }

 private:
  struct ArmedRule {
    FaultRule rule;
    std::uint64_t matched = 0;
    std::uint64_t fired = 0;
  };

  std::vector<ArmedRule> rules_;
  Xoshiro256 rng_;
  std::uint64_t capacity_bytes_ = ~0ull;
  std::uint64_t bytes_accepted_ = 0;
  std::uint64_t kill_at_[kFaultComponentCount] = {~0ull, ~0ull, ~0ull, ~0ull, ~0ull};
  Stats stats_;
  Telemetry* telemetry_ = nullptr;
  Counter* ctr_writes_seen_ = nullptr;
  Counter* ctr_write_errors_ = nullptr;
  Counter* ctr_torn_writes_ = nullptr;
  Counter* ctr_enospc_ = nullptr;
  Counter* ctr_kills_ = nullptr;
};

}  // namespace viprof::support
