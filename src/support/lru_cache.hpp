// Bounded least-recently-used cache.
//
// The continuous-profiling service keeps one prepared CodeMapIndex per
// (vm, epoch-ceiling) generation; an always-on server accumulating
// generations forever would leak, so index instances live in an LRU cache
// sized to the hot set. The cache is deliberately generic (it is also a
// reasonable home for parsed boot maps or archived resolvers later) and
// deliberately *not* internally locked: callers that share one across
// threads wrap it in their own mutex, which lets them batch get-or-load
// under a single lock acquisition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace viprof::support {

template <typename Key, typename Value>
class LruCache {
 public:
  /// `capacity` = max resident entries; 0 behaves as capacity 1 (a cache
  /// that can hold nothing would turn every get() into a rebuild).
  explicit LruCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Value for `key`, refreshing its recency; nullptr when absent. The
  /// pointer is invalidated by the next put() (eviction may free it).
  Value* get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts (or overwrites) `key`, evicting the least recently used entry
  /// beyond capacity. Returns a reference valid until the next put().
  Value& put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    return order_.front().second;
  }

  bool contains(const Key& key) const { return index_.count(key) != 0; }
  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Keys most-recently-used first (tests assert eviction order).
  std::optional<Key> most_recent() const {
    if (order_.empty()) return std::nullopt;
    return order_.front().first;
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace viprof::support
