// Shared command-line scanning for the viprof_* tools.
//
// Every tool used to carry its own `need()` lambda and its own idea of the
// bad-usage exit code; they have converged on one convention: usage text
// goes to stderr and bad usage exits with code 3 (viprof_fsck set the
// precedent — 0/1/2 are verdicts there, so usage had to be something else).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace viprof::support {

/// Exit code for malformed command lines, shared by every tool.
inline constexpr int kExitUsage = 3;

/// Forward scanner over argv. Typical loop:
///
///   ArgScan args(argc, argv, usage_text);
///   while (args.next()) {
///     if (args.is("--in")) in_dir = args.value();
///     else if (args.is("--top")) top = args.value_u64();
///     else if (args.is("--quiet")) quiet = true;
///     else args.fail_unknown();
///   }
///
/// value()/value_u64() consume the following argv slot; a missing value or
/// an unknown flag prints the usage text to stderr and exits kExitUsage.
class ArgScan {
 public:
  ArgScan(int argc, char** argv, const char* usage_text)
      : argc_(argc), argv_(argv), usage_(usage_text) {}

  /// Advances to the next argument; false when argv is exhausted.
  bool next() { return ++i_ < argc_; }

  /// The current argument.
  const char* arg() const { return argv_[i_]; }

  bool is(const char* flag) const { return std::strcmp(argv_[i_], flag) == 0; }

  /// The value following the current flag; exits kExitUsage when absent.
  const char* value() {
    if (i_ + 1 >= argc_) {
      std::fprintf(stderr, "%s needs a value\n", argv_[i_]);
      fail();
    }
    return argv_[++i_];
  }

  std::uint64_t value_u64() { return std::strtoull(value(), nullptr, 10); }

  /// Bad usage: print the usage text to stderr and exit 3.
  [[noreturn]] void fail() const {
    std::fprintf(stderr, "%s", usage_);
    std::exit(kExitUsage);
  }

  /// Unknown-flag diagnosis for the trailing `else` of the scan loop.
  [[noreturn]] void fail_unknown() const {
    std::fprintf(stderr, "unknown argument: %s\n", argv_[i_]);
    fail();
  }

 private:
  int argc_;
  char** argv_;
  const char* usage_;
  int i_ = 0;
};

}  // namespace viprof::support
