// Minimal fixed-size worker pool for the offline post-processing path.
//
// The online sampling side of VIProf never touches this: NMI handlers and
// the daemon run on the simulated machine. Post-processing (resolve +
// aggregate over millions of logged samples) is ordinary host code and can
// use host threads; this pool exists so the resolution pipeline does not
// pay thread spawn cost per shard.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace viprof::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw — there is no result channel;
  /// communicate through captured state.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Runs body(i) for i in [0, count) across the pool and waits for all of
  /// them. body must be safe to call concurrently with distinct i.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // queue became non-empty / stopping
  std::condition_variable idle_cv_;   // a task finished; wait_idle re-checks
  std::size_t active_ = 0;            // tasks currently executing
  bool stop_ = false;
};

}  // namespace viprof::support
