// Minimal fixed-size worker pool for the offline post-processing path.
//
// The online sampling side of VIProf never touches this: NMI handlers and
// the daemon run on the simulated machine. Post-processing (resolve +
// aggregate over millions of logged samples) is ordinary host code and can
// use host threads; this pool exists so the resolution pipeline does not
// pay thread spawn cost per shard.
//
// The pool is one of the named serialization suspects (DESIGN.md §13): its
// single queue mutex is a TracedMutex ("pool.queue"), and attach_telemetry
// additionally publishes pool.tasks / pool.queue_depth / pool.task_ns /
// pool.threads / pool.utilization so queue build-up and worker starvation
// show up in snapshots. Detached pools carry zero instrumentation cost
// beyond an untaken branch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/traced_mutex.hpp"

namespace viprof::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (itself clamped to at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Publishes the pool's queue/utilization metrics (and the pool.queue
  /// lock's contention metrics) into `telemetry`. Call once, before the
  /// pool sees traffic you want attributed.
  void attach_telemetry(Telemetry& telemetry);

  /// Enqueues a task. Tasks must not throw — there is no result channel;
  /// communicate through captured state.
  void submit(std::function<void()> task);

  /// Enqueues every task in `tasks` under one queue-lock acquisition and a
  /// single wakeup broadcast. For small-work fan-outs (parallel_for, batch
  /// ingest) this is what keeps pool.queue wait from dominating: N submits
  /// used to mean N lock takes and N notifies racing the workers.
  void submit_many(std::vector<std::function<void()>> tasks);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Runs body(i) for i in [0, count) across the pool and waits for all of
  /// them. body must be safe to call concurrently with distinct i.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct PoolTelemetry {
    Counter* tasks = nullptr;            // pool.tasks: total submitted
    Gauge* threads = nullptr;            // pool.threads: worker count
    Gauge* utilization = nullptr;        // pool.utilization: busy fraction
    LatencyHistogram* queue_depth = nullptr;  // depth sampled at submit
    LatencyHistogram* task_ns = nullptr;      // per-task wall time
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  TracedMutex mu_{"pool.queue"};
  // _any variants: they accept any Lockable, so the cv re-lock on wakeup
  // goes through TracedMutex::lock() and counts as the real contention it is.
  std::condition_variable_any work_cv_;  // queue became non-empty / stopping
  std::condition_variable_any idle_cv_;  // a task finished; wait_idle re-checks
  std::size_t active_ = 0;               // tasks currently executing
  bool stop_ = false;
  std::unique_ptr<PoolTelemetry> stats_storage_;
  std::atomic<PoolTelemetry*> stats_{nullptr};
};

}  // namespace viprof::support
