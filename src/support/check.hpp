// Lightweight invariant checking used across the simulator.
//
// VIPROF_CHECK is active in all build types: the simulator's value rests on
// its internal consistency (sample conservation, address-map invariants), so
// violations must abort loudly rather than corrupt results silently.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace viprof::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "VIPROF_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace viprof::support

#define VIPROF_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::viprof::support::check_failed(#expr, __FILE__, __LINE__); \
  } while (false)
