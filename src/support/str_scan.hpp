// Single-pass string-view scanning for the hot file parsers.
//
// The crash-consistent file formats (sample logs, epoch code maps, RVM.map)
// are parsed millions of lines at a time during post-processing; going
// through istringstream + sscanf allocates and re-scans every line. These
// helpers walk a string_view exactly once: a LineCursor that only yields
// newline-terminated lines (an unterminated tail is how a torn write
// presents, and must never be trusted), plus field scanners matching the
// formats the writers emit. Numeric scanners skip leading spaces like
// sscanf's conversions do, so canonical and whitespace-padded files parse
// identically to the old sscanf loops.
#pragma once

#include <cstdint>
#include <string_view>

namespace viprof::support {

/// Walks newline-terminated lines of a buffer without copying.
class LineCursor {
 public:
  explicit LineCursor(std::string_view text) : rest_(text) {}

  /// Yields the next '\n'-terminated line (terminator stripped). Returns
  /// false at end of buffer *or* when only an unterminated tail remains —
  /// callers treat that tail as damage (see CodeMapFile::salvage).
  bool next(std::string_view& line) {
    const std::size_t nl = rest_.find('\n');
    if (nl == std::string_view::npos) return false;
    line = rest_.substr(0, nl);
    rest_.remove_prefix(nl + 1);
    return true;
  }

  /// Bytes after the last newline: non-empty means a torn final line.
  std::string_view tail() const { return rest_; }

 private:
  std::string_view rest_;
};

inline bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

inline void skip_ws(std::string_view& s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
}

/// True when nothing but whitespace remains.
inline bool at_end(std::string_view s) {
  skip_ws(s);
  return s.empty();
}

/// Consumes a literal prefix; false (s untouched) on mismatch.
inline bool scan_lit(std::string_view& s, std::string_view lit) {
  if (s.substr(0, lit.size()) != lit) return false;
  s.remove_prefix(lit.size());
  return true;
}

/// Unsigned decimal; needs at least one digit. Skips leading whitespace.
inline bool scan_u64(std::string_view& s, std::uint64_t& out) {
  skip_ws(s);
  std::size_t i = 0;
  std::uint64_t v = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  s.remove_prefix(i);
  out = v;
  return true;
}

inline int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Unsigned hex with optional 0x/0X prefix; needs at least one digit.
/// `max_digits` (0 = unlimited) bounds the digits consumed, mirroring
/// sscanf's %8x field width for the crc trailer.
inline bool scan_hex64(std::string_view& s, std::uint64_t& out,
                       std::size_t max_digits = 0) {
  skip_ws(s);
  std::string_view t = s;
  if (t.size() >= 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X') &&
      hex_value(t.size() > 2 ? t[2] : '\0') >= 0) {
    t.remove_prefix(2);
  }
  std::size_t i = 0;
  std::uint64_t v = 0;
  while (i < t.size() && hex_value(t[i]) >= 0 &&
         (max_digits == 0 || i < max_digits)) {
    v = (v << 4) | static_cast<std::uint64_t>(hex_value(t[i]));
    ++i;
  }
  if (i == 0) return false;
  t.remove_prefix(i);
  s = t;
  out = v;
  return true;
}

/// Whitespace-delimited token (non-empty). Skips leading whitespace.
inline bool scan_token(std::string_view& s, std::string_view& out) {
  skip_ws(s);
  std::size_t i = 0;
  while (i < s.size() && !is_space(s[i])) ++i;
  if (i == 0) return false;
  out = s.substr(0, i);
  s.remove_prefix(i);
  return true;
}

}  // namespace viprof::support
