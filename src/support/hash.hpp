// The one home for the project's non-cryptographic hash primitives.
//
// Every framed on-disk format (sample logs, code maps, object maps, store
// segments, manifests) checksums with 32-bit FNV-1a, and the fleet ring /
// trace-context layers key on 64-bit FNV-1a — historically each site carried
// its own copy of the constants. They live here exactly once so framed-file
// byte-identity cannot drift when one copy is "fixed"; tests/test_support_hash
// pins every constant below.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace viprof::support {

/// FNV-1a 32-bit hash; the record/file checksum used by the crash-consistent
/// sample-log, code-map and object-map framing. Not cryptographic — it only
/// has to catch torn writes and bit rot, like the crc fields in real trace
/// formats.
inline std::uint32_t fnv1a(const char* data, std::size_t size) {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x01000193u;
  }
  return h;
}

inline std::uint32_t fnv1a(const std::string& s) { return fnv1a(s.data(), s.size()); }

/// Raw FNV-1a 64-bit. Deterministic across shards/runs — the trace-context
/// minting hash. Note the weak avalanche: strings differing only in a
/// trailing character land on neighbouring hashes; pair with fmix64() when
/// the distribution matters (consistent-hash rings).
inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;  // 0xcbf29ce484222325
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // 0x100000001b3
  }
  return h;
}

/// MurmurHash3's 64-bit finalizer: full avalanche over a raw hash so that
/// neighbouring inputs spread across the whole 64-bit space.
inline std::uint64_t fmix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace viprof::support
