#include "support/format.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace viprof::support {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string hex(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      // Last column stays left-aligned and unpadded (symbol names can be long).
      if (c + 1 == row.size()) {
        out += row[c];
      } else if (looks_numeric(row[c])) {
        out += pad_left(row[c], widths[c]);
      } else {
        out += pad_right(row[c], widths[c]);
      }
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace viprof::support
