#include "support/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/format.hpp"

namespace viprof::support {

// ---------------------------------------------------------------------------
// Minimal JSON reader. The snapshot and trace formats are emitted by this
// file, but viprof_stat must also survive hand-edited or truncated files, so
// loading goes through a real (if small) recursive-descent parser instead of
// string scanning.
namespace {

struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {  // keep the escape verbatim; metric names never use it
            if (pos_ + 4 > text_.size()) return false;
            out += "\\u";
            out.append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

/// Compact double rendering that std::stod round-trips well enough for
/// snapshots; integers print without a trailing ".000000".
std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

double number_or(const JsonValue* v, double fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kNumber) ? v->number : fallback;
}

std::string string_or(const JsonValue* v, const std::string& fallback) {
  return (v != nullptr && v->kind == JsonValue::Kind::kString) ? v->str : fallback;
}

/// Re-serialises a parsed value compactly. Used to carry trace-event args
/// through parse→merge verbatim (modulo whitespace) without modelling them.
std::string json_serialize(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return json_number(v.number);
    case JsonValue::Kind::kString: return "\"" + json_escape(v.str) + "\"";
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out += ',';
        out += json_serialize(v.items[i]);
      }
      return out + "]";
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, m] : v.members) {
        if (!first) out += ',';
        first = false;
        out += "\"" + json_escape(k) + "\":" + json_serialize(m);
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace

bool json_well_formed(const std::string& text) {
  return JsonParser(text).parse().has_value();
}

std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// --- LatencyHistogram -------------------------------------------------------

LatencyHistogram::LatencyHistogram(double lo, double width, std::size_t buckets)
    : hist_(lo, width, buckets) {}

void LatencyHistogram::add(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  hist_.add(value);
}

double LatencyHistogram::percentile_locked(double q) const {
  if (count_ == 0) return 0.0;
  if (count_ == 1) return min_;  // the one sample, regardless of bucketing
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based: at least one sample must be covered,
  // so q == 0 degenerates to the minimum instead of the bucket floor.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t acc = hist_.underflow();
  if (acc >= target) return min_;
  for (std::size_t i = 0; i < hist_.bucket_count(); ++i) {
    acc += hist_.bucket(i);
    if (acc >= target) {
      const double mid =
          hist_.lo() + (static_cast<double>(i) + 0.5) * hist_.bucket_width();
      // Clamp the midpoint estimate to the exact observed range so narrow
      // distributions never report values no sample could have taken.
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // target mass lives in the overflow bucket: saturate at max
}

HistogramSummary HistogramSummary::merged(const HistogramSummary& a,
                                          const HistogramSummary& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  HistogramSummary out;
  out.count = a.count + b.count;
  out.sum = a.sum + b.sum;
  out.min = std::min(a.min, b.min);
  out.max = std::max(a.max, b.max);
  const double wa = static_cast<double>(a.count) / static_cast<double>(out.count);
  const double wb = 1.0 - wa;
  out.p50 = std::clamp(a.p50 * wa + b.p50 * wb, out.min, out.max);
  out.p90 = std::clamp(a.p90 * wa + b.p90 * wb, out.min, out.max);
  out.p99 = std::clamp(a.p99 * wa + b.p99 * wb, out.min, out.max);
  return out;
}

HistogramSummary LatencyHistogram::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSummary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = percentile_locked(0.50);
  s.p90 = percentile_locked(0.90);
  s.p99 = percentile_locked(0.99);
  return s;
}

// --- SpanTracer -------------------------------------------------------------

SpanTracer::SpanTracer(std::size_t capacity) {
  VIPROF_CHECK(capacity > 0);
  ring_.resize(capacity);
}

void SpanTracer::record(const char* name, const char* cat, std::uint64_t begin_cycle,
                        std::uint64_t end_cycle, std::uint64_t arg,
                        std::uint64_t trace) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Span span;
  span.name = name;
  span.cat = cat;
  span.begin_cycle = begin_cycle;
  span.end_cycle = end_cycle < begin_cycle ? begin_cycle : end_cycle;
  span.arg = arg;
  span.trace = trace;
  span.tid = this_thread_ordinal();
  span.instant = false;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % ring_.size()] = span;  // overwrites the oldest whole span
  ++next_;
}

void SpanTracer::instant(const char* name, const char* cat, std::uint64_t at_cycle,
                         std::uint64_t arg, std::uint64_t trace) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Span span;
  span.name = name;
  span.cat = cat;
  span.begin_cycle = at_cycle;
  span.end_cycle = at_cycle;
  span.arg = arg;
  span.trace = trace;
  span.tid = this_thread_ordinal();
  span.instant = true;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % ring_.size()] = span;
  ++next_;
}

std::vector<Span> SpanTracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  const std::size_t live = static_cast<std::size_t>(
      std::min<std::uint64_t>(next_, ring_.size()));
  out.reserve(live);
  const std::uint64_t first = next_ - live;
  for (std::uint64_t i = first; i < next_; ++i) out.push_back(ring_[i % ring_.size()]);
  return out;
}

std::uint64_t SpanTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

std::uint64_t SpanTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

std::string SpanTracer::to_chrome_json(double cycles_per_us, int pid) const {
  VIPROF_CHECK(cycles_per_us > 0.0);
  const std::vector<Span> all = spans();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : all) {
    if (!first) out += ',';
    first = false;
    const double ts = static_cast<double>(s.begin_cycle) / cycles_per_us;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"cat\":\"" + json_escape(s.cat) +
           "\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(s.tid) + ",\"ts\":" + json_number(ts);
    if (s.instant) {
      out += ",\"ph\":\"i\",\"s\":\"g\"";
    } else {
      const double dur =
          static_cast<double>(s.end_cycle - s.begin_cycle) / cycles_per_us;
      out += ",\"ph\":\"X\",\"dur\":" + json_number(dur);
    }
    if (s.arg != kNoArg || s.trace != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (s.arg != kNoArg) {
        out += "\"epoch\":" + std::to_string(s.arg);
        first_arg = false;
      }
      if (s.trace != 0) {
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(s.trace));
        out += std::string(first_arg ? "" : ",") + "\"trace\":\"" + hex + "\"";
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

// --- Telemetry registry -----------------------------------------------------

Counter& Telemetry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Telemetry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Telemetry::histogram(const std::string& name, double lo, double width,
                                       std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>(lo, width, buckets);
  return *slot;
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) snap.histograms[name] = h->summary();
  }
  // The ring's own accounting, injected so truncated traces show up in
  // every snapshot/diff (tracer_ has its own lock; taken outside mu_).
  snap.counters["telemetry.spans.recorded"] = tracer_.recorded();
  snap.counters["telemetry.spans.dropped"] = tracer_.dropped();
  return snap;
}

// --- TelemetrySnapshot ------------------------------------------------------

std::string TelemetrySnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json_number(h.sum) + ", \"min\": " + json_number(h.min) +
           ", \"max\": " + json_number(h.max) + ", \"p50\": " + json_number(h.p50) +
           ", \"p90\": " + json_number(h.p90) + ", \"p99\": " + json_number(h.p99) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::optional<TelemetrySnapshot> TelemetrySnapshot::from_json(const std::string& json) {
  const auto root = JsonParser(json).parse();
  if (!root || root->kind != JsonValue::Kind::kObject) return std::nullopt;
  TelemetrySnapshot snap;
  if (const JsonValue* counters = root->find("counters");
      counters != nullptr && counters->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, v] : counters->members) {
      if (v.kind != JsonValue::Kind::kNumber) return std::nullopt;
      snap.counters[name] = static_cast<std::uint64_t>(v.number);
    }
  }
  if (const JsonValue* gauges = root->find("gauges");
      gauges != nullptr && gauges->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, v] : gauges->members) {
      if (v.kind != JsonValue::Kind::kNumber) return std::nullopt;
      snap.gauges[name] = v.number;
    }
  }
  if (const JsonValue* hists = root->find("histograms");
      hists != nullptr && hists->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, v] : hists->members) {
      if (v.kind != JsonValue::Kind::kObject) return std::nullopt;
      HistogramSummary h;
      h.count = static_cast<std::uint64_t>(number_or(v.find("count"), 0));
      h.sum = number_or(v.find("sum"), 0);
      h.min = number_or(v.find("min"), 0);
      h.max = number_or(v.find("max"), 0);
      h.p50 = number_or(v.find("p50"), 0);
      h.p90 = number_or(v.find("p90"), 0);
      h.p99 = number_or(v.find("p99"), 0);
      snap.histograms[name] = h;
    }
  }
  return snap;
}

std::string TelemetrySnapshot::render_text(const std::string& prefix) const {
  auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.compare(0, prefix.size(), prefix) == 0;
  };
  std::string out;
  {
    TextTable table({"counter", "value"});
    for (const auto& [name, v] : counters) {
      if (matches(name)) table.add_row({name, std::to_string(v)});
    }
    if (table.row_count() > 0) out += table.render();
  }
  {
    TextTable table({"gauge", "value"});
    for (const auto& [name, v] : gauges) {
      if (matches(name)) table.add_row({name, fixed(v, 3)});
    }
    if (table.row_count() > 0) {
      if (!out.empty()) out += '\n';
      out += table.render();
    }
  }
  {
    TextTable table({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : histograms) {
      if (!matches(name)) continue;
      table.add_row({name, std::to_string(h.count), fixed(h.mean(), 1), fixed(h.p50, 1),
                     fixed(h.p90, 1), fixed(h.p99, 1), fixed(h.max, 1)});
    }
    if (table.row_count() > 0) {
      if (!out.empty()) out += '\n';
      out += table.render();
    }
  }
  return out;
}

std::string TelemetrySnapshot::render_diff(const TelemetrySnapshot& before,
                                           const TelemetrySnapshot& after) {
  std::string out;
  {
    TextTable table({"counter", "before", "after", "delta"});
    std::map<std::string, std::uint64_t> names;  // union, deterministic order
    for (const auto& [n, v] : before.counters) names.emplace(n, 0);
    for (const auto& [n, v] : after.counters) names.emplace(n, 0);
    for (const auto& [name, unused] : names) {
      (void)unused;
      const std::uint64_t b = before.counter(name);
      const std::uint64_t a = after.counter(name);
      if (a == b) continue;
      const auto delta = static_cast<long long>(a) - static_cast<long long>(b);
      table.add_row({name, std::to_string(b), std::to_string(a),
                     (delta >= 0 ? "+" : "") + std::to_string(delta)});
    }
    if (table.row_count() > 0) out += table.render();
  }
  {
    TextTable table({"gauge", "before", "after", "delta"});
    std::map<std::string, double> names;
    for (const auto& [n, v] : before.gauges) names.emplace(n, 0);
    for (const auto& [n, v] : after.gauges) names.emplace(n, 0);
    for (const auto& [name, unused] : names) {
      (void)unused;
      const double b = before.gauge(name);
      const double a = after.gauge(name);
      if (a == b) continue;
      table.add_row({name, fixed(b, 3), fixed(a, 3),
                     (a - b >= 0 ? "+" : "") + fixed(a - b, 3)});
    }
    if (table.row_count() > 0) {
      if (!out.empty()) out += '\n';
      out += table.render();
    }
  }
  {
    TextTable table({"histogram", "count delta", "mean before", "mean after"});
    std::map<std::string, int> names;
    for (const auto& [n, v] : before.histograms) names.emplace(n, 0);
    for (const auto& [n, v] : after.histograms) names.emplace(n, 0);
    for (const auto& [name, unused] : names) {
      (void)unused;
      auto bit = before.histograms.find(name);
      auto ait = after.histograms.find(name);
      const HistogramSummary b = bit == before.histograms.end() ? HistogramSummary{} : bit->second;
      const HistogramSummary a = ait == after.histograms.end() ? HistogramSummary{} : ait->second;
      if (a.count == b.count && a.sum == b.sum) continue;
      const auto delta = static_cast<long long>(a.count) - static_cast<long long>(b.count);
      table.add_row({name, (delta >= 0 ? "+" : "") + std::to_string(delta),
                     fixed(b.mean(), 1), fixed(a.mean(), 1)});
    }
    if (table.row_count() > 0) {
      if (!out.empty()) out += '\n';
      out += table.render();
    }
  }
  return out.empty() ? "(no differences)\n" : out;
}

// --- Chrome-trace parse / fleet merge ---------------------------------------

std::optional<ChromeTrace> parse_chrome_trace(const std::string& json) {
  const auto root = JsonParser(json).parse();
  if (!root || root->kind != JsonValue::Kind::kObject) return std::nullopt;
  const JsonValue* events = root->find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) return std::nullopt;
  ChromeTrace out;
  out.events.reserve(events->items.size());
  for (const JsonValue& e : events->items) {
    if (e.kind != JsonValue::Kind::kObject) return std::nullopt;
    ChromeTraceEvent ev;
    ev.name = string_or(e.find("name"), "");
    ev.cat = string_or(e.find("cat"), "");
    ev.ph = string_or(e.find("ph"), "X");
    ev.ts = number_or(e.find("ts"), 0.0);
    ev.dur = number_or(e.find("dur"), 0.0);
    ev.pid = static_cast<int>(number_or(e.find("pid"), 1.0));
    ev.tid = static_cast<std::uint32_t>(number_or(e.find("tid"), 1.0));
    if (const JsonValue* args = e.find("args")) ev.args_json = json_serialize(*args);
    out.events.push_back(std::move(ev));
  }
  return out;
}

std::string merge_chrome_traces(
    const std::vector<std::pair<std::string, ChromeTrace>>& shards) {
  // Rebase: the earliest real event across every shard becomes ts 0, so
  // rings whose clocks started at different absolute origins share one
  // timeline. (Within a shard relative timing is already consistent.)
  double origin = 0.0;
  bool any = false;
  for (const auto& [label, trace] : shards) {
    for (const ChromeTraceEvent& e : trace.events) {
      if (e.ph == "M") continue;
      if (!any || e.ts < origin) origin = e.ts;
      any = true;
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };

  int pid = 0;
  for (const auto& [label, trace] : shards) {
    ++pid;
    // Shard = process: a metadata record names the lane in the viewer.
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"" + json_escape(label) + "\"}}");
    for (const ChromeTraceEvent& e : trace.events) {
      if (e.ph == "M") continue;  // superseded by our process_name records
      std::string ev = "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
                       json_escape(e.cat) + "\",\"pid\":" + std::to_string(pid) +
                       ",\"tid\":" + std::to_string(e.tid) +
                       ",\"ts\":" + json_number(e.ts - origin) + ",\"ph\":\"" +
                       json_escape(e.ph) + "\"";
      if (e.ph == "i") ev += ",\"s\":\"g\"";
      if (e.ph == "X") ev += ",\"dur\":" + json_number(e.dur);
      if (!e.args_json.empty()) ev += ",\"args\":" + e.args_json;
      ev += '}';
      emit(ev);
    }
  }
  out += "]}";
  return out;
}

}  // namespace viprof::support
