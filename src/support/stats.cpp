#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace viprof::support {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return 0.5 * (lo + hi);
}

double trimmed_mean_drop_extremes(std::vector<double> xs) {
  if (xs.size() < 3) return mean(xs);
  std::sort(xs.begin(), xs.end());
  double acc = 0.0;
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) acc += xs[i];
  return acc / static_cast<double>(xs.size() - 2);
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    VIPROF_CHECK(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace viprof::support
