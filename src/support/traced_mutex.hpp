// Cross-layer trace context and contention-instrumented locks
// (DESIGN.md §13).
//
// TraceContext is the causal tag that follows one profiling session
// through every layer hop: minted per session (deterministically, from the
// session id), carried in the wire-frame header, and stamped onto every
// span the service, store and fleet layers record while working on that
// session. A merged Chrome trace can then line up "the same session" across
// shard processes.
//
// TracedMutex / TracedSharedMutex wrap std::mutex / std::shared_mutex with
// the contention methodology the kernel-tracing literature prescribes: the
// *uncontended* path must stay almost free (one try_lock plus one relaxed
// counter bump), and only genuine waits pay for measurement. A contended
// acquisition records the wait into a per-named-lock histogram
// (`lock.<name>.wait_ns`) and emits two spans into the owning Telemetry's
// ring: the waiter's `cat:"lock.wait"` span and — on release — the
// holder's `cat:"lock.hold"` span, so a trace shows both who waited and
// who made them wait. Detached (un-attach()ed) instances degrade to plain
// mutexes with zero bookkeeping.
//
// Lock naming scheme: `layer.object` string literals ("service.map_cache",
// "store.manifest", "pool.queue", ...). The literal doubles as the span
// name, so it must outlive the Telemetry — use string literals only.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>

#include "support/hash.hpp"
#include "support/telemetry.hpp"

namespace viprof::support {

/// Causal tag for one session's journey through the stack. trace_id == 0
/// means "untraced"; mint() never returns 0.
struct TraceContext {
  std::uint64_t trace_id = 0;
  /// The sender-side span (frame ordinal, batch seq, ...) this hop
  /// descends from; purely informational in the Chrome export.
  std::uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }

  /// Deterministic 64-bit FNV-1a of the session id: the same session is
  /// the same trace on every shard, every run, with no coordination.
  static TraceContext mint(std::string_view session_id) {
    const std::uint64_t h = fnv1a64(session_id);
    return TraceContext{h == 0 ? 0xcbf29ce484222325ull : h, 0};
  }
};

/// Host-side monotonic clock in nanoseconds. Service/store/fleet spans use
/// this time base (exported with cycles_per_us = 1000); the simulated
/// Machine keeps its own virtual-cycle base.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Telemetry handles one traced lock bumps on its slow path. Registered
/// once at attach(); pointers stay valid for the Telemetry's lifetime.
struct LockTelemetry {
  Counter* acquired = nullptr;   // every acquisition (fast or slow)
  Counter* contended = nullptr;  // acquisitions that had to wait
  LatencyHistogram* wait_ns = nullptr;
  SpanTracer* tracer = nullptr;
};

namespace detail {
/// Shared attach/record logic for both traced lock flavours.
class LockInstrumentation {
 public:
  explicit LockInstrumentation(const char* name) : name_(name) {}

  const char* name() const { return name_; }

  /// Registers `lock.<name>.*` metrics in `telemetry` and arms the slow
  /// path. Call once, before the lock sees concurrent traffic.
  void attach(Telemetry& telemetry);

  LockTelemetry* handles() const { return handles_.load(std::memory_order_acquire); }

  void count_fast(LockTelemetry* h) { h->acquired->inc(); }
  /// Records one contended acquisition: wait histogram + waiter span.
  void count_wait(LockTelemetry* h, std::uint64_t t0, std::uint64_t t1) {
    h->acquired->inc();
    h->contended->inc();
    h->wait_ns->add(static_cast<double>(t1 - t0));
    h->tracer->record(name_, "lock.wait", t0, t1);
  }
  void record_hold(LockTelemetry* h, std::uint64_t begin, std::uint64_t end) {
    h->tracer->record(name_, "lock.hold", begin, end);
  }

 private:
  const char* name_;
  std::unique_ptr<LockTelemetry> storage_;
  std::atomic<LockTelemetry*> handles_{nullptr};
};
}  // namespace detail

/// std::mutex with per-named-lock contention accounting. Satisfies
/// Lockable, so std::lock_guard / std::unique_lock /
/// std::condition_variable_any work unchanged.
class TracedMutex {
 public:
  explicit TracedMutex(const char* name) : instr_(name) {}

  TracedMutex(const TracedMutex&) = delete;
  TracedMutex& operator=(const TracedMutex&) = delete;

  void attach(Telemetry& telemetry) { instr_.attach(telemetry); }
  const char* name() const { return instr_.name(); }

  void lock() {
    LockTelemetry* h = instr_.handles();
    if (h == nullptr) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {  // uncontended: one relaxed increment, no clock
      instr_.count_fast(h);
      return;
    }
    const std::uint64_t t0 = monotonic_ns();
    mu_.lock();
    const std::uint64_t t1 = monotonic_ns();
    instr_.count_wait(h, t0, t1);
    hold_begin_ = t1;        // guarded by mu_
    contended_hold_ = true;  // guarded by mu_
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (LockTelemetry* h = instr_.handles()) instr_.count_fast(h);
    return true;
  }

  void unlock() {
    LockTelemetry* h = instr_.handles();
    const bool contended = contended_hold_;
    const std::uint64_t begin = hold_begin_;
    contended_hold_ = false;
    mu_.unlock();
    // The hold span covers [contended acquire, release); recorded after the
    // release so the recording itself never extends the critical section.
    if (h != nullptr && contended) instr_.record_hold(h, begin, monotonic_ns());
  }

 private:
  std::mutex mu_;
  detail::LockInstrumentation instr_;
  std::uint64_t hold_begin_ = 0;  // guarded by mu_
  bool contended_hold_ = false;   // guarded by mu_
};

/// std::shared_mutex with the same accounting. Exclusive holds record
/// holder spans exactly like TracedMutex; shared holds do not (many run
/// concurrently — there is no single "the holder"), but shared *waits*
/// still land in the wait histogram and the span ring.
class TracedSharedMutex {
 public:
  explicit TracedSharedMutex(const char* name) : instr_(name) {}

  TracedSharedMutex(const TracedSharedMutex&) = delete;
  TracedSharedMutex& operator=(const TracedSharedMutex&) = delete;

  void attach(Telemetry& telemetry) { instr_.attach(telemetry); }
  const char* name() const { return instr_.name(); }

  void lock() {
    LockTelemetry* h = instr_.handles();
    if (h == nullptr) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      instr_.count_fast(h);
      return;
    }
    const std::uint64_t t0 = monotonic_ns();
    mu_.lock();
    const std::uint64_t t1 = monotonic_ns();
    instr_.count_wait(h, t0, t1);
    hold_begin_ = t1;
    contended_hold_ = true;
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (LockTelemetry* h = instr_.handles()) instr_.count_fast(h);
    return true;
  }

  void unlock() {
    LockTelemetry* h = instr_.handles();
    const bool contended = contended_hold_;
    const std::uint64_t begin = hold_begin_;
    contended_hold_ = false;
    mu_.unlock();
    if (h != nullptr && contended) instr_.record_hold(h, begin, monotonic_ns());
  }

  void lock_shared() {
    LockTelemetry* h = instr_.handles();
    if (h == nullptr) {
      mu_.lock_shared();
      return;
    }
    if (mu_.try_lock_shared()) {
      instr_.count_fast(h);
      return;
    }
    const std::uint64_t t0 = monotonic_ns();
    mu_.lock_shared();
    const std::uint64_t t1 = monotonic_ns();
    instr_.count_wait(h, t0, t1);
  }

  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    if (LockTelemetry* h = instr_.handles()) instr_.count_fast(h);
    return true;
  }

  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
  detail::LockInstrumentation instr_;
  std::uint64_t hold_begin_ = 0;  // guarded by exclusive mu_
  bool contended_hold_ = false;   // guarded by exclusive mu_
};

}  // namespace viprof::support
