// Fixed-bucket histogram for distribution bookkeeping in the simulator
// (e.g. sample inter-arrival cycles, epoch map sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace viprof::support {

class Histogram {
 public:
  /// Buckets: [lo, lo+width), [lo+width, lo+2*width), ... `count` buckets,
  /// plus underflow and overflow buckets.
  Histogram(double lo, double width, std::size_t count);

  void add(double value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t bucket_count() const { return buckets_.size(); }
  double lo() const { return lo_; }
  double bucket_width() const { return width_; }

  /// Value below which `q` (0..1) of the mass lies (bucket-midpoint estimate).
  double quantile(double q) const;

  /// Compact ASCII rendering for debug output.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace viprof::support
