// Bump-allocated batch arena (DESIGN.md §14).
//
// The service ingest hot path used to pay one heap allocation (and one
// free) per decoded sample vector per batch; under concurrent ingest those
// allocations serialize in the allocator. An Arena hands out pointers from
// large recycled blocks with a pointer bump, and reset() reclaims
// everything at once when the batch retires — allocation cost amortises to
// near zero and the allocator lock leaves the hot path.
//
// Lifetime rules: individual allocations are never freed; they die
// together at reset() (or destruction). A reset() invalidates every
// pointer previously handed out, so an arena must outlive everything
// decoded into it — the server enforces this by keeping the arena inside
// the Batch that owns the decoded samples and recycling it only after the
// batch has been applied.
//
// Not thread-safe: one arena belongs to one batch, touched by one thread
// at a time (receiver fills it, then exactly one worker drains it — the
// queue handoff orders the accesses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace viprof::support {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes < 256 ? 256 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `bytes` of storage aligned to `align` (<= alignof(std::max_align_t)).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    for (;;) {
      if (active_ > 0) {
        Block& block = blocks_[active_ - 1];
        const std::size_t at = (cursor_ + (align - 1)) & ~(align - 1);
        if (at + bytes <= block.size) {
          cursor_ = at + bytes;
          allocated_ += bytes;
          return block.data.get() + at;
        }
      }
      // Advance into the next recycled block if it fits, else splice in a
      // fresh one (oversized requests get a dedicated block).
      if (active_ < blocks_.size() && blocks_[active_].size >= bytes + align) {
        ++active_;
        cursor_ = 0;
        continue;
      }
      const std::size_t want = bytes + align > block_bytes_ ? bytes + align : block_bytes_;
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(active_),
                     Block{std::make_unique<char[]>(want), want});
      ++active_;
      cursor_ = 0;
    }
  }

  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena storage is raw bytes: no destructors run at reset()");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Drops every allocation, keeping the blocks for reuse.
  void reset() {
    active_ = 0;
    cursor_ = 0;
    allocated_ = 0;
  }

  /// Live bytes handed out since the last reset().
  std::size_t bytes_allocated() const { return allocated_; }

  /// Total block storage held (survives reset()).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  const std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // blocks_[0..active_) are in use this cycle
  std::size_t cursor_ = 0;  // bump offset into blocks_[active_ - 1]
  std::size_t allocated_ = 0;
};

/// Growable array of trivially-copyable elements backed by an Arena.
/// Growth copies into a bigger arena block and abandons the old one to the
/// arena (reclaimed wholesale at reset()). Copying the vector copies the
/// view, not the elements — the arena stays the single owner.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ArenaVector() = default;
  explicit ArenaVector(Arena& arena) : arena_(&arena) {}

  void reserve(std::size_t capacity) {
    if (capacity > capacity_) grow_to(capacity);
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow_to(capacity_ == 0 ? 64 : capacity_ * 2);
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void grow_to(std::size_t capacity) {
    T* grown = arena_->template alloc_array<T>(capacity);
    if (size_ != 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = capacity;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace viprof::support
