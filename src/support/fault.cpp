#include "support/fault.hpp"

#include "support/telemetry.hpp"

namespace viprof::support {

void FaultInjector::bind_telemetry(Telemetry* telemetry) {
  if (telemetry == telemetry_) return;
  telemetry_ = telemetry;
  if (telemetry == nullptr) {
    ctr_writes_seen_ = ctr_write_errors_ = ctr_torn_writes_ = ctr_enospc_ =
        ctr_kills_ = nullptr;
    return;
  }
  // The registry counts faults injected *while bound* (i.e. observed by
  // this machine); no replay of earlier counts, so a re-bound injector can
  // never double-count a fault.
  ctr_writes_seen_ = &telemetry->counter("fault.writes_seen");
  ctr_write_errors_ = &telemetry->counter("fault.write_errors");
  ctr_torn_writes_ = &telemetry->counter("fault.torn_writes");
  ctr_enospc_ = &telemetry->counter("fault.enospc_errors");
  ctr_kills_ = &telemetry->counter("fault.kills");
}

FaultInjector::WriteOutcome FaultInjector::on_write(const std::string& path,
                                                    std::size_t size) {
  ++stats_.writes_seen;
  if (ctr_writes_seen_ != nullptr) ctr_writes_seen_->inc();

  // Disk-full is checked first: once the device is out of space no rule can
  // make the write succeed, and partial writes still consume capacity.
  if (bytes_accepted_ + size > capacity_bytes_) {
    ++stats_.enospc_errors;
    if (ctr_enospc_ != nullptr) ctr_enospc_->inc();
    return {WriteOutcome::Result::kNoSpace, 0};
  }

  for (ArmedRule& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (path.compare(0, rule.path_prefix.size(), rule.path_prefix) != 0) continue;
    const std::uint64_t match = armed.matched++;
    if (match < rule.skip || armed.fired >= rule.count) continue;
    if (rule.probability < 1.0 && !rng_.chance(rule.probability)) continue;
    ++armed.fired;
    switch (rule.kind) {
      case FaultKind::kWriteError:
        ++stats_.write_errors;
        if (ctr_write_errors_ != nullptr) ctr_write_errors_->inc();
        return {WriteOutcome::Result::kError, 0};
      case FaultKind::kTornWrite: {
        ++stats_.torn_writes;
        if (ctr_torn_writes_ != nullptr) ctr_torn_writes_->inc();
        double frac = rule.torn_keep_frac;
        if (frac < 0.0) frac = 0.0;
        if (frac > 1.0) frac = 1.0;
        const auto kept = static_cast<std::size_t>(static_cast<double>(size) * frac);
        bytes_accepted_ += kept;
        return {WriteOutcome::Result::kTorn, kept};
      }
      case FaultKind::kNoSpace:
        ++stats_.enospc_errors;
        if (ctr_enospc_ != nullptr) ctr_enospc_->inc();
        return {WriteOutcome::Result::kNoSpace, 0};
    }
  }

  bytes_accepted_ += size;
  return {WriteOutcome::Result::kOk, size};
}

void FaultInjector::schedule_kill(FaultComponent component, std::uint64_t at_cycle) {
  kill_at_[static_cast<std::size_t>(component)] = at_cycle;
}

bool FaultInjector::should_kill(FaultComponent component, std::uint64_t now) {
  std::uint64_t& at = kill_at_[static_cast<std::size_t>(component)];
  if (now < at) return false;
  at = ~0ull;  // one-shot: a restarted component is not instantly re-killed
  ++stats_.kills;
  if (ctr_kills_ != nullptr) ctr_kills_->inc();
  return true;
}

}  // namespace viprof::support
