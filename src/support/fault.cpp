#include "support/fault.hpp"

namespace viprof::support {

FaultInjector::WriteOutcome FaultInjector::on_write(const std::string& path,
                                                    std::size_t size) {
  ++stats_.writes_seen;

  // Disk-full is checked first: once the device is out of space no rule can
  // make the write succeed, and partial writes still consume capacity.
  if (bytes_accepted_ + size > capacity_bytes_) {
    ++stats_.enospc_errors;
    return {WriteOutcome::Result::kNoSpace, 0};
  }

  for (ArmedRule& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (path.compare(0, rule.path_prefix.size(), rule.path_prefix) != 0) continue;
    const std::uint64_t match = armed.matched++;
    if (match < rule.skip || armed.fired >= rule.count) continue;
    if (rule.probability < 1.0 && !rng_.chance(rule.probability)) continue;
    ++armed.fired;
    switch (rule.kind) {
      case FaultKind::kWriteError:
        ++stats_.write_errors;
        return {WriteOutcome::Result::kError, 0};
      case FaultKind::kTornWrite: {
        ++stats_.torn_writes;
        double frac = rule.torn_keep_frac;
        if (frac < 0.0) frac = 0.0;
        if (frac > 1.0) frac = 1.0;
        const auto kept = static_cast<std::size_t>(static_cast<double>(size) * frac);
        bytes_accepted_ += kept;
        return {WriteOutcome::Result::kTorn, kept};
      }
      case FaultKind::kNoSpace:
        ++stats_.enospc_errors;
        return {WriteOutcome::Result::kNoSpace, 0};
    }
  }

  bytes_accepted_ += size;
  return {WriteOutcome::Result::kOk, size};
}

void FaultInjector::schedule_kill(FaultComponent component, std::uint64_t at_cycle) {
  kill_at_[static_cast<std::size_t>(component)] = at_cycle;
}

bool FaultInjector::should_kill(FaultComponent component, std::uint64_t now) {
  std::uint64_t& at = kill_at_[static_cast<std::size_t>(component)];
  if (now < at) return false;
  at = ~0ull;  // one-shot: a restarted component is not instantly re-killed
  ++stats_.kills;
  return true;
}

}  // namespace viprof::support
