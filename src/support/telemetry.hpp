// Self-telemetry: the profiler measured with its own methodology.
//
// VIProf's claim is that full-system profiling costs almost nothing; this
// layer lets the reproduction observe *its own* hot paths the same way it
// observes the JVM's. A Telemetry instance (one per simulated Machine, so
// sessions stay hermetic) holds a registry of named counters, gauges and
// latency histograms plus a lock-light span tracer recording begin/end
// events into a bounded ring. Snapshots serialise to text and JSON (the
// viprof_stat tool dumps and diffs them from an exported session tree);
// spans export as Chrome trace format JSON, loadable in about://tracing.
//
// Metric naming scheme (DESIGN.md §8): `layer.component.metric`, e.g.
// `daemon.flush.write_errors`, `resolver.walkback.depth`. Counters are
// monotonic; gauges are last-write-wins; histograms record value
// distributions with bucket-estimated percentiles.
//
// Concurrency: metric registration takes a mutex; increments on registered
// handles are lock-free atomics (counters/gauges) or a short uncontended
// critical section (histograms, span ring). The NMI-path counters rely on
// this: a handle obtained once is safe to bump from any thread.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/histogram.hpp"

namespace viprof::support {

/// Monotonic event count. Lock-free; safe from any thread once registered.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins double (e.g. profiler.overhead_pct). Lock-free via
/// bit-cast storage so readers never see a torn value.
class Gauge {
 public:
  void set(double v) { bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed); }
  double value() const { return std::bit_cast<double>(bits_.load(std::memory_order_relaxed)); }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Point-in-time reduction of one latency histogram. Percentiles are
/// bucket-midpoint estimates (support::Histogram); min/max/sum are exact.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Folds two summaries (e.g. the same lock's histogram from two shards).
  /// count/sum add and min/max combine exactly; percentiles are count-
  /// weighted averages — an approximation, clamped to the merged range,
  /// good enough to *rank* locks (the contention report's job) though not
  /// to re-derive exact quantiles.
  static HistogramSummary merged(const HistogramSummary& a, const HistogramSummary& b);
};

/// Thread-safe distribution tracker over a fixed-bucket support::Histogram.
/// Exact min/max/sum ride alongside so single-sample and saturating cases
/// stay meaningful even when the mass lands in the overflow bucket.
class LatencyHistogram {
 public:
  LatencyHistogram(double lo, double width, std::size_t buckets);

  void add(double value);
  HistogramSummary summary() const;

 private:
  double percentile_locked(double q) const;  // mu_ must be held

  mutable std::mutex mu_;
  Histogram hist_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time copy of a whole registry: what viprof_stat dumps and
/// diffs, what the bench harness embeds in BENCH_*.json.
struct TelemetrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  double gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
  }

  std::string to_json() const;
  static std::optional<TelemetrySnapshot> from_json(const std::string& json);

  /// viprof_stat-style fixed-width tables; `prefix` filters metric names.
  std::string render_text(const std::string& prefix = "") const;

  /// `after` minus `before`, metric by metric (union of names); unchanged
  /// metrics are omitted.
  static std::string render_diff(const TelemetrySnapshot& before,
                                 const TelemetrySnapshot& after);
};

/// One completed span (or an instant event when end == begin and
/// arg-carrying marker). Name/category must be string literals (or
/// otherwise outlive the tracer): recording never allocates.
struct Span {
  const char* name = "";
  const char* cat = "";
  std::uint64_t begin_cycle = 0;
  std::uint64_t end_cycle = 0;
  std::uint64_t arg = ~0ull;   // kNoArg = no args object in the trace
  std::uint64_t trace = 0;     // TraceContext::trace_id; 0 = untraced
  std::uint32_t tid = 1;       // recording thread's process-wide ordinal
  bool instant = false;
};

/// Process-wide dense thread id, starting at 1 (so single-threaded traces
/// keep the historical tid 1). Stable for the thread's lifetime; exported
/// as the Chrome-trace tid so per-worker lanes separate in the viewer.
std::uint32_t this_thread_ordinal();

/// Bounded ring of whole spans. Records are O(1) under a short mutex (the
/// "lock-light" contract: no allocation, no I/O, no nested locks); once the
/// ring is full each new span overwrites the oldest *whole* span, and the
/// overwrite is counted — the trace never contains a half-dropped event.
class SpanTracer {
 public:
  static constexpr std::uint64_t kNoArg = ~0ull;

  explicit SpanTracer(std::size_t capacity = 4096);

  void record(const char* name, const char* cat, std::uint64_t begin_cycle,
              std::uint64_t end_cycle, std::uint64_t arg = kNoArg,
              std::uint64_t trace = 0);
  void instant(const char* name, const char* cat, std::uint64_t at_cycle,
               std::uint64_t arg = kNoArg, std::uint64_t trace = 0);

  /// Tracing kill switch for overhead experiments: when disabled, record()
  /// and instant() return before touching the ring (no lock, no count).
  /// Metrics (counters/gauges/histograms) are unaffected.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Surviving spans, oldest first.
  std::vector<Span> spans() const;

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;  // whole spans overwritten by newer ones
  std::size_t capacity() const { return ring_.size(); }

  /// Chrome trace format ("trace event format") JSON. Cycles convert to
  /// microseconds at `cycles_per_us` (3400 for the paper's 3.4 GHz Xeon;
  /// host-side rings use monotonic_ns at 1000). `pid` labels the process
  /// lane — trace-merge assigns one per shard.
  std::string to_chrome_json(double cycles_per_us, int pid = 1) const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  std::vector<Span> ring_;
  std::uint64_t next_ = 0;  // total spans ever recorded
};

/// The per-Machine telemetry hub: metric registry + span tracer.
/// Registration is idempotent (same name → same handle) and thread-safe;
/// handles stay valid and pointer-stable for the Telemetry's lifetime.
class Telemetry {
 public:
  explicit Telemetry(std::size_t span_capacity = 4096) : tracer_(span_capacity) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bucket parameters apply on first registration; later calls with the
  /// same name return the existing histogram unchanged.
  LatencyHistogram& histogram(const std::string& name, double lo, double width,
                              std::size_t buckets);

  SpanTracer& spans() { return tracer_; }
  const SpanTracer& spans() const { return tracer_; }

  /// Includes the span ring's own accounting as `telemetry.spans.recorded`
  /// / `telemetry.spans.dropped` counters, so a truncated trace is visibly
  /// counted in every snapshot rather than silently shorter.
  TelemetrySnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  SpanTracer tracer_;
};

/// True when `text` parses as a single complete JSON value (objects,
/// arrays, strings, numbers, booleans, null). Used by viprof_stat, the
/// snapshot loader and the trace well-formedness tests.
bool json_well_formed(const std::string& text);

/// One Chrome-trace event as re-read from a trace.json. `args_json` keeps
/// the raw args object verbatim so a parse→merge round trip is lossless
/// for fields this struct does not model.
struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;  // "X" complete, "i" instant, "M" metadata
  double ts = 0.0;
  double dur = 0.0;
  int pid = 1;
  std::uint32_t tid = 1;
  std::string args_json;  // raw "{...}" or empty
};

struct ChromeTrace {
  std::vector<ChromeTraceEvent> events;
};

/// Parses a Chrome-trace-format JSON document (as written by
/// SpanTracer::to_chrome_json or merge_chrome_traces). Returns nullopt on
/// malformed JSON or a missing traceEvents array.
std::optional<ChromeTrace> parse_chrome_trace(const std::string& json);

/// Folds per-shard trace rings into one Chrome trace: input i becomes
/// pid i+1 with a process_name metadata record carrying its label, tids
/// pass through (worker lanes stay separate), and timestamps are rebased
/// so the earliest event across all inputs lands at ts 0 — shards with
/// different clock origins line up on one timeline.
std::string merge_chrome_traces(
    const std::vector<std::pair<std::string, ChromeTrace>>& shards);

}  // namespace viprof::support
