// Bounded multi-producer/multi-consumer queue.
//
// The profile server gives every client session one of these between the
// frame receiver and the ingest workers: the bound is the backpressure
// point. push() blocks the sender until space frees up (the service's
// default overload behaviour — a slow server slows its clients instead of
// silently shedding), try_push() lets a drop-with-accounting policy refuse
// instead, and close() releases everyone during shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/telemetry.hpp"

namespace viprof::support {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Publishes live queue depth into `depth_gauge` and samples the depth
  /// observed at each push into `depth_hist` (either may be null). Call
  /// before the queue sees concurrent traffic — the pointers are read
  /// under the queue lock but installed without synchronisation.
  void instrument(Gauge* depth_gauge, LatencyHistogram* depth_hist) {
    std::lock_guard<std::mutex> lock(mu_);
    depth_gauge_ = depth_gauge;
    depth_hist_ = depth_hist;
  }

  /// Blocks until there is room (backpressure) or the queue is closed.
  /// Returns false only when closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    note_push_locked();
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking: false when full or closed (the caller drops and counts).
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    note_push_locked();
    item_cv_.notify_one();
    return true;
  }

  /// Blocks for an item; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    item_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    note_pop_locked();
    space_cv_.notify_one();
    return item;
  }

  /// Timed pop: blocks up to `timeout` for an item. nullopt on expiry or
  /// once the queue is closed *and* drained — expiry and close are
  /// indistinguishable to the caller on purpose (both mean "nothing to do
  /// now"); use closed() to tell them apart. An item that arrives in the
  /// same instant close() fires is still delivered, never dropped.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!item_cv_.wait_for(lock, timeout,
                           [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;  // expired with nothing queued
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    note_pop_locked();
    space_cv_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    note_pop_locked();
    space_cv_.notify_one();
    return item;
  }

  /// Wakes all blocked producers and consumers; push becomes a no-op,
  /// pop drains the remaining items then reports exhaustion.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// High-water mark: the deepest the queue has ever been. How close the
  /// backpressure bound came to engaging, without watching live gauges.
  std::size_t peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  void note_push_locked() {  // mu_ must be held
    if (items_.size() > peak_) peak_ = items_.size();
    if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(items_.size()));
    if (depth_hist_ != nullptr) depth_hist_->add(static_cast<double>(items_.size()));
  }
  void note_pop_locked() {  // mu_ must be held
    if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(items_.size()));
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable item_cv_;   // queue became non-empty / closed
  std::condition_variable space_cv_;  // queue has room / closed
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t peak_ = 0;
  Gauge* depth_gauge_ = nullptr;
  LatencyHistogram* depth_hist_ = nullptr;
};

}  // namespace viprof::support
