// Deterministic pseudo-random generators.
//
// All randomness in the simulator flows through these; a run is fully
// reproducible from its seed. SplitMix64 is used to derive stream seeds,
// Xoshiro256** is the workhorse generator (fast, good statistical quality,
// trivially copyable so simulation state can be snapshotted).
#pragma once

#include <cstdint>

namespace viprof::support {

/// SplitMix64: seed expander. Given one 64-bit seed, produces a stream of
/// well-mixed values; primarily used to seed independent Xoshiro streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: main generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform() < p; }

  /// Approximately normal via sum of uniforms (Irwin-Hall, 12 terms);
  /// adequate for simulation jitter, avoids transcendental calls.
  double normal(double mean, double stddev) noexcept {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return mean + (acc - 6.0) * stddev;
  }

  /// Zipf-like skewed pick in [0, n): rank r chosen with weight 1/(r+1)^s,
  /// via inverse-CDF over a coarse approximation. Used for hot-method skew.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

inline std::uint64_t Xoshiro256::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Rejection-free approximate inversion (Gray et al. style) for s != 1 is
  // overkill here; use the standard approximation for s in (0, ~3].
  const double u = uniform();
  if (s <= 0.0) return below(n);
  // Inverse CDF of the continuous analogue x^(-s) on [1, n+1).
  const double one_minus_s = 1.0 - s;
  double x;
  if (one_minus_s > 1e-9 || one_minus_s < -1e-9) {
    const double nn = static_cast<double>(n) + 1.0;
    double t = u * (__builtin_pow(nn, one_minus_s) - 1.0) + 1.0;
    x = __builtin_pow(t, 1.0 / one_minus_s);
  } else {
    const double nn = static_cast<double>(n) + 1.0;
    x = __builtin_exp(u * __builtin_log(nn));
  }
  auto r = static_cast<std::uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace viprof::support
