// Statistics helpers implementing the paper's measurement methodology:
// "run the benchmark 10 times, eliminate the fastest and slowest run, then
// average the remaining 8" (Section 4.1).
#pragma once

#include <cstddef>
#include <vector>

namespace viprof::support {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// Trimmed mean per the paper: drop the single smallest and single largest
/// value, average the rest. Requires at least 3 samples; with fewer, falls
/// back to the plain mean.
double trimmed_mean_drop_extremes(std::vector<double> xs);

/// Geometric mean (useful for slowdown ratios). Values must be positive.
double geomean(const std::vector<double>& xs);

}  // namespace viprof::support
