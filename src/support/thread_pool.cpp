#include "support/thread_pool.hpp"

#include <algorithm>

namespace viprof::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<TracedMutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::attach_telemetry(Telemetry& telemetry) {
  if (stats_.load(std::memory_order_acquire) != nullptr) return;  // idempotent
  mu_.attach(telemetry);
  auto s = std::make_unique<PoolTelemetry>();
  s->tasks = &telemetry.counter("pool.tasks");
  s->threads = &telemetry.gauge("pool.threads");
  s->utilization = &telemetry.gauge("pool.utilization");
  s->queue_depth = &telemetry.histogram("pool.queue_depth", 0.0, 1.0, 64);
  s->task_ns = &telemetry.histogram("pool.task_ns", 0.0, 50'000.0, 64);
  s->threads->set(static_cast<double>(workers_.size()));
  stats_storage_ = std::move(s);
  stats_.store(stats_storage_.get(), std::memory_order_release);
}

void ThreadPool::submit(std::function<void()> task) {
  PoolTelemetry* stats = stats_.load(std::memory_order_acquire);
  std::size_t depth = 0;
  {
    std::lock_guard<TracedMutex> lock(mu_);
    queue_.push(std::move(task));
    depth = queue_.size();
  }
  work_cv_.notify_one();
  if (stats != nullptr) {
    stats->tasks->inc();
    stats->queue_depth->add(static_cast<double>(depth));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<TracedMutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    // Run inline: a single-item fan-out through the queue would only add a
    // context switch, and callers rely on parallel_for(1, ...) matching the
    // serial path exactly.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    submit([&body, i] { body(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    PoolTelemetry* stats = nullptr;
    {
      std::unique_lock<TracedMutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
      stats = stats_.load(std::memory_order_acquire);
      if (stats != nullptr && !workers_.empty()) {
        stats->utilization->set(static_cast<double>(active_) /
                                static_cast<double>(workers_.size()));
      }
    }
    const std::uint64_t t0 = stats != nullptr ? monotonic_ns() : 0;
    task();
    if (stats != nullptr) {
      stats->task_ns->add(static_cast<double>(monotonic_ns() - t0));
    }
    {
      std::lock_guard<TracedMutex> lock(mu_);
      --active_;
      if (stats != nullptr && !workers_.empty()) {
        stats->utilization->set(static_cast<double>(active_) /
                                static_cast<double>(workers_.size()));
      }
    }
    idle_cv_.notify_all();
  }
}

}  // namespace viprof::support
