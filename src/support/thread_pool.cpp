#include "support/thread_pool.hpp"

#include <algorithm>

namespace viprof::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<TracedMutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::attach_telemetry(Telemetry& telemetry) {
  if (stats_.load(std::memory_order_acquire) != nullptr) return;  // idempotent
  mu_.attach(telemetry);
  auto s = std::make_unique<PoolTelemetry>();
  s->tasks = &telemetry.counter("pool.tasks");
  s->threads = &telemetry.gauge("pool.threads");
  s->utilization = &telemetry.gauge("pool.utilization");
  s->queue_depth = &telemetry.histogram("pool.queue_depth", 0.0, 1.0, 64);
  s->task_ns = &telemetry.histogram("pool.task_ns", 0.0, 50'000.0, 64);
  s->threads->set(static_cast<double>(workers_.size()));
  stats_storage_ = std::move(s);
  stats_.store(stats_storage_.get(), std::memory_order_release);
}

void ThreadPool::submit(std::function<void()> task) {
  PoolTelemetry* stats = stats_.load(std::memory_order_acquire);
  std::size_t depth = 0;
  {
    std::lock_guard<TracedMutex> lock(mu_);
    queue_.push(std::move(task));
    depth = queue_.size();
  }
  work_cv_.notify_one();
  if (stats != nullptr) {
    stats->tasks->inc();
    stats->queue_depth->add(static_cast<double>(depth));
  }
}

void ThreadPool::submit_many(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    submit(std::move(tasks.front()));
    return;
  }
  PoolTelemetry* stats = stats_.load(std::memory_order_acquire);
  std::size_t depth = 0;
  {
    std::lock_guard<TracedMutex> lock(mu_);
    for (std::function<void()>& task : tasks) queue_.push(std::move(task));
    depth = queue_.size();
  }
  work_cv_.notify_all();
  if (stats != nullptr) {
    stats->tasks->inc(tasks.size());
    stats->queue_depth->add(static_cast<double>(depth));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<TracedMutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    // Run inline: a single-item fan-out through the queue would only add a
    // context switch, and callers rely on parallel_for(1, ...) matching the
    // serial path exactly.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tasks.emplace_back([&body, i] { body(i); });
  }
  submit_many(std::move(tasks));
  wait_idle();
}

void ThreadPool::worker_loop() {
  // One critical section covers "retire previous task, fetch next": a
  // worker takes mu_ ~once per task instead of twice, and idle_cv_ is only
  // signalled when the pool actually went idle — per-task notify storms
  // were a measurable slice of pool.queue wait under small-work loads.
  std::unique_lock<TracedMutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop();
    ++active_;
    PoolTelemetry* stats = stats_.load(std::memory_order_acquire);
    if (stats != nullptr && !workers_.empty()) {
      stats->utilization->set(static_cast<double>(active_) /
                              static_cast<double>(workers_.size()));
    }
    lock.unlock();

    const std::uint64_t t0 = stats != nullptr ? monotonic_ns() : 0;
    task();
    task = nullptr;  // release captures before re-locking
    if (stats != nullptr) {
      stats->task_ns->add(static_cast<double>(monotonic_ns() - t0));
    }

    lock.lock();
    --active_;
    if (stats != nullptr && !workers_.empty()) {
      stats->utilization->set(static_cast<double>(active_) /
                              static_cast<double>(workers_.size()));
    }
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace viprof::support
