#include "support/thread_pool.hpp"

#include <algorithm>

namespace viprof::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    // Run inline: a single-item fan-out through the queue would only add a
    // context switch, and callers rely on parallel_for(1, ...) matching the
    // serial path exactly.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    submit([&body, i] { body(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace viprof::support
