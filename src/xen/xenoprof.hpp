// XenoProf-style system-wide profiling session for virtualized stacks.
//
// Extends the VIProf pipeline one layer down: the performance counters are
// virtualised by the hypervisor, whose NMI handler (xenoprof_nmi_handler)
// captures samples for *whichever domain is running* and routes them into
// the shared stream. Each guest runs a full VIProf stack (VM agent + epoch
// code maps); one dom0 daemon drains everything. Post-processing produces
// per-domain profiles — including the hypervisor cycles each domain caused —
// and a hypervisor-only profile, all at function granularity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/viprof.hpp"
#include "xen/domain.hpp"
#include "xen/hypervisor.hpp"

namespace viprof::xen {

struct XenoProfConfig {
  std::vector<hw::CounterConfig> counters = {
      {hw::EventKind::kGlobalPowerEvents, 90'000, true},
      {hw::EventKind::kBsqCacheReference, 1'400, true},
  };
  hw::Cycles nmi_cost = 1'800;  // hypervisor half is leaner than a kernel module
  std::size_t buffer_capacity = 64 * 1024;
  core::DaemonConfig daemon;
  core::AgentConfig agent;
};

struct XenoProfResult {
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  core::DaemonStats daemon;
};

class XenoProfSession {
 public:
  XenoProfSession(os::Machine& machine, Hypervisor& hypervisor,
                  const XenoProfConfig& config = {});
  ~XenoProfSession();

  XenoProfSession(const XenoProfSession&) = delete;
  XenoProfSession& operator=(const XenoProfSession&) = delete;

  /// Registers a guest: attaches a VIProf VM agent and the shared dom0
  /// daemon to its VM. Call before the guest's vm->setup().
  void attach_guest(Domain& domain);

  /// Programs the virtualised counters and installs the hypervisor NMI
  /// handler. Call once before scheduling begins.
  void start();

  /// Drains outstanding samples after all domains completed.
  XenoProfResult stop_and_flush();

  /// Profile of one domain: samples taken while it occupied the CPU, at
  /// every layer — its JIT code, its VM runtime, guest kernel, and the
  /// hypervisor work it caused.
  core::Profile domain_profile(const Domain& domain,
                               const std::vector<hw::EventKind>& events);

  /// Hypervisor-only rows, aggregated over all domains.
  core::Profile hypervisor_profile(const std::vector<hw::EventKind>& events);

  core::Resolver& resolver();

  /// Offline-resolution archive (see core/archive.hpp).
  void export_archive(const std::string& prefix = "archive");
  const core::RegistrationTable& registrations() const { return table_; }
  core::SampleBuffer* buffer() { return buffer_.get(); }

 private:
  os::Machine* machine_;
  Hypervisor* hypervisor_;
  XenoProfConfig config_;
  core::RegistrationTable table_;
  std::unique_ptr<core::SampleBuffer> buffer_;
  std::unique_ptr<core::Daemon> daemon_;
  std::vector<std::unique_ptr<core::VmAgent>> agents_;
  std::unique_ptr<core::Resolver> resolver_;
  bool started_ = false;
};

}  // namespace viprof::xen
