// Credit scheduler: interleaves multiple guest stacks on the single
// simulated core, charging hypervisor work (context switches, scheduler
// ticks, and the paravirtual tax on guest kernel activity) between slices.
//
// This realises the paper's "multiple concurrently executing software
// stacks" future-work scenario: two JVMs time-share one machine while
// XenoProf-extended VIProf profiles all layers of both.
#pragma once

#include <cstdint>
#include <vector>

#include "xen/domain.hpp"
#include "xen/hypervisor.hpp"

namespace viprof::xen {

struct SchedulerConfig {
  std::uint64_t slice_app_ops = 150'000;  // guest ops per scheduling slice
  double kernel_op_cycles = 1.5;          // cycles per taxed hypervisor op
};

struct SchedulerStats {
  std::uint64_t slices = 0;
  std::uint64_t context_switches = 0;
  hw::Cycles hypervisor_cycles = 0;
  hw::Cycles total_cycles = 0;
};

class CreditScheduler {
 public:
  CreditScheduler(os::Machine& machine, Hypervisor& hypervisor,
                  const SchedulerConfig& config = {})
      : machine_(&machine), hypervisor_(&hypervisor), config_(config) {}

  void add_domain(Domain* domain) { domains_.push_back(domain); }

  /// Runs every domain's program to completion (each Vm must be set up).
  /// Domains' finish() is called as they complete; stats land in Domain.
  SchedulerStats run_all();

 private:
  Domain* next_runnable();

  os::Machine* machine_;
  Hypervisor* hypervisor_;
  SchedulerConfig config_;
  std::vector<Domain*> domains_;
  std::vector<std::int64_t> credit_;
};

}  // namespace viprof::xen
