#include "xen/xenoprof.hpp"

#include "core/archive.hpp"
#include "support/check.hpp"

namespace viprof::xen {

XenoProfSession::XenoProfSession(os::Machine& machine, Hypervisor& hypervisor,
                                 const XenoProfConfig& config)
    : machine_(&machine), hypervisor_(&hypervisor), config_(config) {
  buffer_ = std::make_unique<core::SampleBuffer>(config_.buffer_capacity);
  core::DaemonConfig dcfg = config_.daemon;
  dcfg.vm_aware = true;
  daemon_ = std::make_unique<core::Daemon>(machine, *buffer_, table_, dcfg);
}

XenoProfSession::~XenoProfSession() { machine_->cpu().set_nmi_handler(nullptr); }

void XenoProfSession::attach_guest(Domain& domain) {
  VIPROF_CHECK(domain.vm != nullptr);
  agents_.push_back(
      std::make_unique<core::VmAgent>(*machine_, *buffer_, table_, config_.agent));
  domain.vm->add_listener(agents_.back().get());
  domain.vm->add_service(daemon_.get());
}

void XenoProfSession::start() {
  VIPROF_CHECK(!started_);
  started_ = true;
  machine_->cpu().counters().set_enabled(true);
  machine_->cpu().counters().configure(config_.counters);
  // Samples captured in the hypervisor's sampling half; self-samples point
  // at xenoprof_nmi_handler in ring -1.
  machine_->cpu().set_profiler_context(hypervisor_->context("xenoprof_nmi_handler", 0));
  machine_->cpu().set_nmi_handler([this](const hw::SampleContext& sc) -> hw::Cycles {
    buffer_->push(core::Sample::from_context(sc));
    return config_.nmi_cost;
  });
}

XenoProfResult XenoProfSession::stop_and_flush() {
  XenoProfResult result;
  daemon_->final_flush();
  result.samples = machine_->cpu().nmi_count();
  result.dropped = buffer_->dropped();
  result.daemon = daemon_->stats();
  machine_->cpu().set_nmi_handler(nullptr);
  return result;
}

void XenoProfSession::export_archive(const std::string& prefix) {
  core::write_archive(*machine_, table_, machine_->vfs(), prefix);
}

core::Resolver& XenoProfSession::resolver() {
  if (!resolver_) {
    resolver_ = std::make_unique<core::Resolver>(*machine_, table_, true);
    resolver_->load();
  }
  return *resolver_;
}

core::Profile XenoProfSession::domain_profile(const Domain& domain,
                                              const std::vector<hw::EventKind>& events) {
  core::Profile profile;
  core::Resolver& r = resolver();
  const hw::Pid pid = domain.vm->pid();
  for (hw::EventKind event : events) {
    for (const core::LoggedSample& s : core::SampleLogReader::read(
             machine_->vfs(), daemon_->sample_dir(), event)) {
      // XenoProf's per-domain routing: samples carry the pid of the guest
      // that occupied the CPU, including hypervisor-ring samples taken on
      // its behalf.
      if (s.pid != pid) continue;
      profile.add(event, r.resolve(s));
    }
  }
  return profile;
}

core::Profile XenoProfSession::hypervisor_profile(
    const std::vector<hw::EventKind>& events) {
  core::Profile profile;
  core::Resolver& r = resolver();
  for (hw::EventKind event : events) {
    for (const core::LoggedSample& s : core::SampleLogReader::read(
             machine_->vfs(), daemon_->sample_dir(), event)) {
      const core::Resolution res = r.resolve(s);
      if (res.domain == core::SampleDomain::kHypervisor) profile.add(event, res);
    }
  }
  return profile;
}

}  // namespace viprof::xen
