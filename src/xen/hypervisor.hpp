// Simulated Xen hypervisor — the paper's Section 5 extension ("we plan to
// integrate Xen virtualization extensions into VIProf to integrate profiling
// of the Xen layer (via XenoProf) as well as multiple concurrently executing
// software stacks"), implemented here.
//
// The hypervisor owns the top of the address space (ia32 Xen reserves the
// region above the kernel), exposes a routine catalogue like the kernel's
// (hypercalls, shadow page-table maintenance, the credit scheduler, event
// channels, and XenoProf's own sampling half), and models the paravirtual
// tax: a fraction of every guest's kernel work re-enters the hypervisor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/access_pattern.hpp"
#include "hw/cpu.hpp"
#include "os/image.hpp"
#include "os/machine.hpp"

namespace viprof::xen {

struct HypervisorRoutine {
  std::string name;
  hw::Address base = 0;
  std::uint64_t size = 0;
  double cpi = 1.5;
  hw::AccessPattern pattern;
};

struct HypervisorConfig {
  /// Hypervisor ops executed per guest-kernel op (shadow page tables,
  /// interrupt virtualisation, hypercall servicing).
  double paravirt_tax = 0.18;
  /// Cycles for a VCPU context switch (save/restore + TLB effects).
  hw::Cycles context_switch_cost = 24'000;
  /// Cycles per scheduler tick (credit accounting).
  hw::Cycles tick_cost = 3'000;
};

class Hypervisor {
 public:
  static constexpr hw::Address kXenBase = 0xfc00'0000;  // ia32 Xen slot

  /// Builds the xen-syms image, registers it with the machine's registry
  /// and announces the hypervisor range to the machine (so the profiler's
  /// classification and resolution see it).
  Hypervisor(os::Machine& machine, const HypervisorConfig& config = {});

  const HypervisorConfig& config() const { return config_; }
  os::ImageId image() const { return image_; }
  hw::Address base() const { return kXenBase; }
  std::uint64_t size() const { return size_; }
  bool contains(hw::Address pc) const { return pc >= base() && pc < base() + size_; }

  const HypervisorRoutine& routine(const std::string& name) const;

  /// Execution context for a routine; hypervisor work runs in ring -1.
  hw::ExecContext context(const std::string& name, hw::Pid current_guest_pid) const;

  /// Executes `cycles` of hypervisor work spread over the weighted routine
  /// mix for one activity; drives the machine's CPU directly.
  enum class Activity : std::uint8_t {
    kHypercall,   // guest-triggered entry + servicing
    kShadowPt,    // page-table maintenance
    kSchedule,    // credit scheduler + context switch
    kXenoprof,    // sampling infrastructure
  };
  void exec(Activity activity, hw::Cycles cycles, hw::Pid guest_pid);

  hw::Cycles cycles_executed() const { return cycles_executed_; }

 private:
  void add_routine(std::string name, std::uint64_t code_size, double cpi,
                   std::uint64_t working_set, double random_frac);
  const HypervisorRoutine& pick(Activity activity, std::uint64_t salt) const;

  os::Machine* machine_;
  HypervisorConfig config_;
  os::ImageId image_ = os::kInvalidImage;
  std::uint64_t size_ = 0;
  std::uint64_t cursor_ = 0;
  std::vector<HypervisorRoutine> routines_;
  hw::Cycles cycles_executed_ = 0;
  mutable std::uint64_t pick_state_ = 0x9e37;
};

}  // namespace viprof::xen
