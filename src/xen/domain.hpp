// A Xen domain: one guest software stack (guest OS + JVM + application)
// running on the shared machine under the hypervisor's scheduler.
#pragma once

#include <cstdint>
#include <string>

#include "jvm/vm.hpp"

namespace viprof::xen {

using DomainId = std::uint16_t;

struct Domain {
  Domain() = default;
  Domain(DomainId id_, std::string name_, jvm::Vm* vm_, std::uint32_t weight_ = 256)
      : id(id_), name(std::move(name_)), vm(vm_), weight(weight_) {}

  DomainId id = 0;
  std::string name;       // "dom1-jbb"
  jvm::Vm* vm = nullptr;  // the guest's stack (owned by the caller)
  std::uint32_t weight = 256;  // credit-scheduler weight (Xen default)

  // Filled by the scheduler.
  bool finished = false;
  jvm::RunStats stats;
  std::uint64_t slices = 0;
  std::uint64_t last_kernel_ops = 0;  // for the paravirt tax delta
};

}  // namespace viprof::xen
