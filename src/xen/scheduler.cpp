#include "xen/scheduler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace viprof::xen {

Domain* CreditScheduler::next_runnable() {
  Domain* best = nullptr;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    Domain* d = domains_[i];
    if (d->finished) continue;
    if (best == nullptr || credit_[i] > credit_[best_index]) {
      best = d;
      best_index = i;
    }
  }
  if (best != nullptr) {
    // Burn a slice of credit; everyone else accrues.
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      if (domains_[i] == best) {
        credit_[i] -= 1'000;
      } else if (!domains_[i]->finished) {
        credit_[i] += domains_[i]->weight;
      }
    }
  }
  return best;
}

SchedulerStats CreditScheduler::run_all() {
  VIPROF_CHECK(!domains_.empty());
  credit_.assign(domains_.size(), 0);
  for (std::size_t i = 0; i < domains_.size(); ++i)
    credit_[i] = domains_[i]->weight;

  SchedulerStats stats;
  const hw::Cycles start = machine_->cpu().now();
  const hw::Cycles hyp_start = hypervisor_->cycles_executed();
  Domain* previous = nullptr;

  while (Domain* d = next_runnable()) {
    VIPROF_CHECK(d->vm != nullptr);

    // Scheduler tick; a VCPU switch costs extra when the domain changes.
    hw::Cycles sched = hypervisor_->config().tick_cost;
    if (d != previous) {
      sched += hypervisor_->config().context_switch_cost;
      ++stats.context_switches;
      // A domain switch trashes the guest-visible cache state.
      machine_->cache().flush();
    }
    hypervisor_->exec(Hypervisor::Activity::kSchedule, sched, d->vm->pid());
    previous = d;

    const bool more = d->vm->step(config_.slice_app_ops);
    ++d->slices;
    ++stats.slices;

    // Paravirtual tax: the guest kernel work of this slice re-enters the
    // hypervisor (shadow page tables, hypercall servicing).
    const std::uint64_t kernel_ops = d->vm->stats_so_far().kernel_ops;
    const std::uint64_t delta = kernel_ops - d->last_kernel_ops;
    d->last_kernel_ops = kernel_ops;
    if (delta > 0) {
      const auto tax = static_cast<hw::Cycles>(
          static_cast<double>(delta) * hypervisor_->config().paravirt_tax *
          config_.kernel_op_cycles);
      if (tax > 0) {
        hypervisor_->exec(Hypervisor::Activity::kHypercall, tax / 2, d->vm->pid());
        hypervisor_->exec(Hypervisor::Activity::kShadowPt, tax - tax / 2, d->vm->pid());
      }
    }

    if (!more) {
      d->stats = d->vm->finish();
      d->finished = true;
    }
  }

  stats.total_cycles = machine_->cpu().now() - start;
  stats.hypervisor_cycles = hypervisor_->cycles_executed() - hyp_start;
  return stats;
}

}  // namespace viprof::xen
