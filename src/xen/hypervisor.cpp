#include "xen/hypervisor.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace viprof::xen {

namespace {
constexpr std::uint64_t kXenDataOffset = 0x0080'0000;
}

Hypervisor::Hypervisor(os::Machine& machine, const HypervisorConfig& config)
    : machine_(&machine), config_(config) {
  // Routine catalogue, mirroring xen-syms of the 3.0 era.
  add_routine("hypercall_entry", 1024, 1.2, 4 * 1024, 0.05);
  add_routine("do_mmu_update", 4096, 1.8, 256 * 1024, 0.55);
  add_routine("do_update_va_mapping", 2048, 1.7, 128 * 1024, 0.50);
  add_routine("shadow_page_fault", 6144, 1.9, 512 * 1024, 0.60);
  add_routine("evtchn_send", 1536, 1.3, 16 * 1024, 0.20);
  add_routine("evtchn_do_upcall", 1536, 1.3, 16 * 1024, 0.20);
  add_routine("csched_schedule", 4096, 1.5, 64 * 1024, 0.35);
  add_routine("vcpu_context_switch", 2048, 1.4, 32 * 1024, 0.25);
  add_routine("do_iret", 512, 1.1, 2 * 1024, 0.05);
  add_routine("timer_softirq", 1024, 1.3, 8 * 1024, 0.15);
  add_routine("xenoprof_nmi_handler", 1024, 1.2, 4 * 1024, 0.05);
  add_routine("xenoprof_buffer_flush", 1536, 1.3, 32 * 1024, 0.15);
  size_ = cursor_;

  os::Image& img = machine.registry().create("xen-syms", os::ImageKind::kKernel, size_);
  image_ = img.id();
  for (const auto& r : routines_) img.symbols().add(r.name, r.base - kXenBase, r.size);

  machine.set_hypervisor({image_, kXenBase, size_});
}

void Hypervisor::add_routine(std::string name, std::uint64_t code_size, double cpi,
                             std::uint64_t working_set, double random_frac) {
  HypervisorRoutine r;
  r.name = std::move(name);
  r.base = kXenBase + cursor_;
  r.size = code_size;
  r.cpi = cpi;
  r.pattern.base = kXenBase + kXenDataOffset + cursor_ * 8;
  r.pattern.working_set = working_set;
  r.pattern.stride = 64;
  r.pattern.random_frac = random_frac;
  r.pattern.accesses_per_op = 0.4;
  r.pattern.hot_frac = 0.75;
  cursor_ += code_size;
  routines_.push_back(std::move(r));
}

const HypervisorRoutine& Hypervisor::routine(const std::string& name) const {
  for (const auto& r : routines_)
    if (r.name == name) return r;
  VIPROF_CHECK(false && "unknown hypervisor routine");
  __builtin_unreachable();
}

hw::ExecContext Hypervisor::context(const std::string& name,
                                    hw::Pid current_guest_pid) const {
  const HypervisorRoutine& r = routine(name);
  return hw::ExecContext{r.base, r.size, hw::CpuMode::kHypervisor, current_guest_pid};
}

const HypervisorRoutine& Hypervisor::pick(Activity activity, std::uint64_t salt) const {
  // Deterministic weighted rotation per activity (no shared RNG: the
  // hypervisor must not perturb guest-visible randomness).
  pick_state_ = pick_state_ * 6364136223846793005ULL + salt + 1;
  const std::uint64_t r = (pick_state_ >> 33) % 100;
  auto by_name = [this](const char* name) -> const HypervisorRoutine& {
    return routine(name);
  };
  switch (activity) {
    case Activity::kHypercall:
      if (r < 30) return by_name("hypercall_entry");
      if (r < 65) return by_name("do_mmu_update");
      if (r < 85) return by_name("do_update_va_mapping");
      return by_name("do_iret");
    case Activity::kShadowPt:
      if (r < 70) return by_name("shadow_page_fault");
      return by_name("do_mmu_update");
    case Activity::kSchedule:
      if (r < 45) return by_name("csched_schedule");
      if (r < 80) return by_name("vcpu_context_switch");
      if (r < 90) return by_name("timer_softirq");
      return by_name("evtchn_do_upcall");
    case Activity::kXenoprof:
      if (r < 70) return by_name("xenoprof_nmi_handler");
      return by_name("xenoprof_buffer_flush");
  }
  return routines_.front();
}

void Hypervisor::exec(Activity activity, hw::Cycles cycles, hw::Pid guest_pid) {
  hw::Cycles remaining = cycles;
  while (remaining > 0) {
    const HypervisorRoutine& r = pick(activity, remaining);
    const hw::Cycles slice = std::min<hw::Cycles>(remaining, 4'000);
    hw::ChunkEvents events;
    events.instructions = static_cast<std::uint64_t>(
        static_cast<double>(slice) / std::max(r.cpi, 0.1));
    events.l2_misses = static_cast<double>(slice) * 0.0015;
    machine_->cpu().set_context(
        hw::ExecContext{r.base, r.size, hw::CpuMode::kHypervisor, guest_pid});
    machine_->cpu().advance(slice, events);
    cycles_executed_ += slice;
    remaining -= slice;
  }
}

}  // namespace viprof::xen
