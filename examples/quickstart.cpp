// Quickstart: profile a small synthetic Java workload with VIProf and print
// the Fig. 1-style cross-stack report.
//
//   $ ./quickstart
//
// Walks the full pipeline: machine bring-up, VM setup, sampling session,
// daemon logging, epoch code maps, offline resolution, report rendering.
#include <cstdio>
#include <string>

#include "core/viprof.hpp"
#include "workloads/generator.hpp"

int main() {
  using namespace viprof;

  // 1. A simulated machine: 3.4 GHz P4-style core, 16KB L1 / 1MB L2.
  os::Machine machine;

  // 2. A synthetic Java program: 64 methods, a hot memset-calling loop,
  //    enough allocation to trigger several collections.
  workloads::Workload workload = workloads::make_synthetic({
      .name = "quickstart",
      .seed = 11,
      .methods = 64,
      .total_app_ops = 30'000'000,
      .alloc_intensity = 0.5,
      .nursery_bytes = 2ull << 20,
  });

  // 3. The VM that will execute it.
  jvm::Vm vm(machine, workload.vm);

  // 4. A VIProf session: time + L2-miss events, 90K sampling period.
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  core::ProfilingSession session(machine, vm, config);
  session.attach();      // must precede vm.setup(): the agent hooks VM start
  vm.setup(workload.program);

  // 5. Run and post-process.
  core::SessionResult result = session.run();

  std::printf("== VIProf quickstart ==\n");
  std::printf("virtual cycles        : %llu\n",
              static_cast<unsigned long long>(result.cycles));
  std::printf("collections (epochs)  : %llu\n",
              static_cast<unsigned long long>(result.vm.collections));
  std::printf("methods compiled      : base=%llu opt0=%llu opt1=%llu opt2=%llu\n",
              static_cast<unsigned long long>(result.vm.compiles[0]),
              static_cast<unsigned long long>(result.vm.compiles[1]),
              static_cast<unsigned long long>(result.vm.compiles[2]),
              static_cast<unsigned long long>(result.vm.compiles[3]));
  std::printf("samples: nmi=%llu jit=%llu boot+image=%llu kernel=%llu dropped=%llu\n",
              static_cast<unsigned long long>(result.nmi_count),
              static_cast<unsigned long long>(result.daemon.jit_samples),
              static_cast<unsigned long long>(result.daemon.image_samples),
              static_cast<unsigned long long>(result.daemon.kernel_samples),
              static_cast<unsigned long long>(result.samples_dropped));
  std::printf("agent: maps=%llu entries=%llu\n\n",
              static_cast<unsigned long long>(result.agent.maps_written),
              static_cast<unsigned long long>(result.agent.map_entries_written));

  const std::string report = session.report_text(
      {hw::EventKind::kGlobalPowerEvents, hw::EventKind::kBsqCacheReference}, 18);
  std::printf("%s\n", report.c_str());

  std::printf("-- cross-layer call arcs --\n%s\n",
              session.build_callgraph(hw::EventKind::kGlobalPowerEvents)
                  .render(8)
                  .c_str());
  return 0;
}
