// Closing the VIVA loop: profile a run with VIProf, derive cross-layer
// advice (hot JIT methods + kernel specialisation candidates), apply it to
// a fresh stack, and measure the speedup — the optimisation workflow the
// paper positions VIProf as the first step of.
//
//   $ ./profile_guided_opt
#include <cstdio>

#include "core/viprof.hpp"
#include "guidance/feedback.hpp"
#include "workloads/common.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace viprof;
constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

workloads::Workload make_workload() {
  workloads::GeneratorOptions opt;
  opt.name = "service";
  opt.seed = 404;
  opt.methods = 96;
  opt.zipf = 1.4;  // a few dominant methods: ripe for early top-tier compiles
  opt.total_app_ops = 120'000'000;
  opt.alloc_intensity = 0.35;
  opt.nursery_bytes = 4ull << 20;
  opt.native_frac = 0.05;
  opt.syscall_frac = 0.07;  // kernel-heavy: ripe for specialisation
  return workloads::make_synthetic(opt);
}

hw::Cycles run_plain(bool guided, const guidance::Advice* advice) {
  os::MachineConfig mcfg;
  mcfg.seed = 0x60d;
  os::Machine machine(mcfg);
  const workloads::Workload w = make_workload();
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kBase;  // measure without profiling cost
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  if (guided) {
    const guidance::FeedbackReport report =
        guidance::apply_advice(*advice, vm, machine);
    std::printf("applied: %zu methods boosted to O2-on-first-touch, "
                "%zu kernel routines specialised\n",
                report.methods_boosted, report.routines_specialized);
  }
  return session.run().cycles;
}

}  // namespace

int main() {
  // Step 1: profiling run (VIProf at the moderate 90K rate).
  guidance::Advice advice;
  {
    os::MachineConfig mcfg;
    mcfg.seed = 0x60d;
    os::Machine machine(mcfg);
    const workloads::Workload w = make_workload();
    jvm::Vm vm(machine, w.vm);
    core::SessionConfig config;
    config.mode = core::ProfilingMode::kViprof;
    core::ProfilingSession session(machine, vm, config);
    session.attach();
    vm.setup(w.program);
    session.run();
    const core::Profile profile = session.build_profile({kTime});
    advice = guidance::Advisor().analyze(profile, kTime);
  }
  std::printf("== step 1: VIProf profile -> cross-layer advice ==\n%s\n",
              advice.render().c_str());

  // Step 2: A/B the advice on fresh, unprofiled stacks.
  std::printf("== step 2: apply and re-run ==\n");
  const hw::Cycles baseline = run_plain(false, nullptr);
  const hw::Cycles guided = run_plain(true, &advice);
  const double speedup = static_cast<double>(baseline) / static_cast<double>(guided);
  std::printf("\nbaseline : %.2f virtual s\n",
              static_cast<double>(baseline) / workloads::kCyclesPerSecond);
  std::printf("guided   : %.2f virtual s\n",
              static_cast<double>(guided) / workloads::kCyclesPerSecond);
  std::printf("speedup  : %.3fx from one cross-layer profiling pass\n", speedup);
  return 0;
}
