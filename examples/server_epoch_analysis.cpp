// Epoch analysis on a long-running server workload (pseudoJBB).
//
// Demonstrates the GC-epoch machinery end to end: how often the agent
// closes epochs, how much each partial code map carries, how a hot
// transaction method's body wanders through the heap until it is promoted
// to the mature space, and that samples from *every* epoch still attribute
// to it. This is the behaviour the paper's Section 3.1 is about.
//
//   $ ./server_epoch_analysis
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/viprof.hpp"
#include "workloads/common.hpp"
#include "workloads/pseudojbb.hpp"

int main() {
  using namespace viprof;
  constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

  // A shortened pseudoJBB: 3 warehouses, 40K transactions.
  const workloads::Workload w = workloads::make_pseudojbb({3, 40'000});

  os::MachineConfig mcfg;
  mcfg.seed = 0x5e17e1;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);

  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{kTime, 45'000, true}};
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  const core::SessionResult result = session.run();

  std::printf("== pseudoJBB epoch analysis ==\n");
  std::printf("transactions model : 3 warehouses x 40K transactions\n");
  std::printf("run                : %.1f virtual s, %llu epochs\n\n",
              static_cast<double>(result.cycles) / workloads::kCyclesPerSecond,
              static_cast<unsigned long long>(result.vm.collections));

  // Per-epoch sample counts from the raw log.
  std::map<std::uint64_t, std::uint64_t> per_epoch;
  for (const core::LoggedSample& s : core::SampleLogReader::read(
           machine.vfs(), session.daemon()->sample_dir(), kTime)) {
    ++per_epoch[s.epoch];
  }
  std::printf("-- samples per epoch --\n");
  for (const auto& [epoch, count] : per_epoch) {
    std::printf("  epoch %2llu: %5llu samples\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(count));
  }

  // Track the hottest transaction through the code maps: how many epochs
  // mention it (i.e. how often its body moved before maturing).
  const core::Resolver& resolver = session.resolver();
  const core::CodeMapIndex* maps = resolver.code_maps(vm.pid());
  const std::string hot = "spec.jbb.TransactionManager.processNewOrder";
  std::printf("\n-- body movement of %s --\n", hot.c_str());
  int mentions = 0;
  for (std::uint64_t epoch = 0; epoch <= maps->max_epoch(); ++epoch) {
    // Probe the map set: which epoch maps carry an entry for the method?
    // (A mention = compiled or moved during that epoch.)
    for (const std::string& path : machine.vfs().list("jit_maps")) {
      const auto contents = machine.vfs().read(path);
      if (!contents) continue;
      const auto parsed = core::CodeMapFile::parse(*contents);
      if (!parsed || parsed->epoch != epoch) continue;
      for (const core::CodeMapEntry& e : parsed->entries) {
        if (e.symbol == hot) {
          std::printf("  epoch %2llu: body at %#llx (%llu bytes)\n",
                      static_cast<unsigned long long>(epoch),
                      static_cast<unsigned long long>(e.address),
                      static_cast<unsigned long long>(e.size));
          ++mentions;
        }
      }
    }
  }
  std::printf("  -> mentioned in %d maps; absent afterwards = promoted to the\n",
              mentions);
  std::printf("     mature space (or recompiled at a higher tier) and no longer\n");
  std::printf("     moving — exactly why late epochs write smaller maps.\n\n");

  // Attribution check across all epochs.
  core::Profile profile = session.build_profile({kTime});
  const core::ProfileRow* row = profile.find("JIT.App", hot);
  if (row != nullptr) {
    std::printf("-- attribution --\n");
    std::printf("  %s: %.2f%% of time across all %llu epochs\n", hot.c_str(),
                profile.percent(*row, kTime),
                static_cast<unsigned long long>(result.vm.collections));
  }
  std::printf("\n-- top of the unified profile --\n%s",
              session.report_text({kTime}, 10).c_str());
  return 0;
}
