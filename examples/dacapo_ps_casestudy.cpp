// Case study (paper Section 4.2): profile the DaCapo `ps` benchmark with
// VIProf and walk through what the unified profile shows — Java application
// methods, VM-internal methods, native libraries and kernel paths ranked
// side by side, plus the per-layer breakdown and cross-layer call arcs.
//
//   $ ./dacapo_ps_casestudy
#include <cstdio>

#include "core/viprof.hpp"
#include "workloads/common.hpp"
#include "workloads/dacapo.hpp"

int main() {
  using namespace viprof;
  constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;
  constexpr auto kDmiss = hw::EventKind::kBsqCacheReference;

  const workloads::Workload w = workloads::make_dacapo("ps");

  os::MachineConfig mcfg;
  mcfg.seed = 0xca5e;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);

  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{kTime, 90'000, true}, {kDmiss, 1'400, true}};
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  const core::SessionResult result = session.run();

  std::printf("== DaCapo ps under VIProf ==\n");
  std::printf("run length        : %.1f virtual seconds\n",
              static_cast<double>(result.cycles) / workloads::kCyclesPerSecond);
  std::printf("collections       : %llu (epochs)\n",
              static_cast<unsigned long long>(result.vm.collections));
  std::printf("code maps written : %llu (%llu entries)\n",
              static_cast<unsigned long long>(result.agent.maps_written),
              static_cast<unsigned long long>(result.agent.map_entries_written));
  std::printf("samples           : %llu\n\n",
              static_cast<unsigned long long>(result.nmi_count));

  std::printf("-- unified profile (top 14) --\n%s\n",
              session.report_text({kTime, kDmiss}, 14).c_str());

  // Per-layer breakdown: the view no single-layer profiler can produce.
  core::Profile profile = session.build_profile({kTime});
  const double total = static_cast<double>(profile.total(kTime));
  std::printf("-- time by stack layer --\n");
  const struct {
    core::SampleDomain domain;
    const char* label;
  } layers[] = {
      {core::SampleDomain::kJit, "Java application (JIT code)"},
      {core::SampleDomain::kBoot, "JVM runtime (boot image)"},
      {core::SampleDomain::kImage, "native executables/libraries"},
      {core::SampleDomain::kKernel, "kernel"},
  };
  for (const auto& layer : layers) {
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(profile.domain_total(layer.domain, kTime)) / total : 0.0;
    std::printf("  %-30s %6.2f %%\n", layer.label, pct);
  }

  std::printf("\n-- hottest cross-layer call arcs --\n%s",
              session.build_callgraph(kTime).render(8).c_str());
  return 0;
}
