// Sampling-rate sweep: how profiling overhead and profile detail trade off
// as the sampling period varies — the knob behind the paper's Fig. 2 arms
// (45K / 90K / 450K cycles between samples).
//
//   $ ./overhead_sweep
#include <cstdio>

#include "core/viprof.hpp"
#include "support/format.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace viprof;

struct SweepPoint {
  std::uint64_t period;
  double slowdown;
  std::uint64_t samples;
  std::uint64_t distinct_symbols;
};

SweepPoint run_point(const workloads::Workload& w, std::uint64_t period,
                     hw::Cycles base_cycles) {
  os::MachineConfig mcfg;
  mcfg.seed = 0x5eeb;
  os::Machine machine(mcfg);
  jvm::Vm vm(machine, w.vm);
  core::SessionConfig config;
  config.mode = core::ProfilingMode::kViprof;
  config.counters = {{hw::EventKind::kGlobalPowerEvents, period, true}};
  core::ProfilingSession session(machine, vm, config);
  session.attach();
  vm.setup(w.program);
  const core::SessionResult result = session.run();

  SweepPoint point;
  point.period = period;
  point.slowdown = static_cast<double>(result.cycles) / static_cast<double>(base_cycles);
  point.samples = result.nmi_count;
  point.distinct_symbols =
      session.build_profile({hw::EventKind::kGlobalPowerEvents}).row_count();
  return point;
}

}  // namespace

int main() {
  workloads::GeneratorOptions opt;
  opt.name = "sweep";
  opt.seed = 31;
  opt.methods = 128;
  opt.total_app_ops = 60'000'000;
  opt.alloc_intensity = 0.5;
  opt.nursery_bytes = 2ull << 20;
  opt.native_frac = 0.08;
  opt.syscall_frac = 0.03;
  const workloads::Workload w = workloads::make_synthetic(opt);

  hw::Cycles base_cycles = 0;
  {
    os::MachineConfig mcfg;
    mcfg.seed = 0x5eeb;
    os::Machine machine(mcfg);
    jvm::Vm vm(machine, w.vm);
    core::SessionConfig config;
    config.mode = core::ProfilingMode::kBase;
    core::ProfilingSession session(machine, vm, config);
    session.attach();
    vm.setup(w.program);
    base_cycles = session.run().cycles;
  }

  std::printf("== VIProf sampling-period sweep (synthetic, %.1f virtual s base) ==\n\n",
              static_cast<double>(base_cycles) / workloads::kCyclesPerSecond);
  viprof::support::TextTable table(
      {"period (cycles)", "slowdown", "samples", "distinct symbols"});
  for (const std::uint64_t period :
       {10'000ull, 22'500ull, 45'000ull, 90'000ull, 180'000ull, 450'000ull,
        900'000ull}) {
    const SweepPoint p = run_point(w, period, base_cycles);
    table.add_row({std::to_string(p.period), viprof::support::fixed(p.slowdown, 4),
                   std::to_string(p.samples), std::to_string(p.distinct_symbols)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Rule of thumb from the paper: the 90K period buys function-level\n");
  std::printf("attribution across the whole stack for ~5%% slowdown; 450K is\n");
  std::printf("nearly free but starves rare symbols of samples.\n");
  return 0;
}
