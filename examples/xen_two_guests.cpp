// Two concurrently executing software stacks under Xen, profiled by the
// XenoProf-extended VIProf — the paper's Section 5 future-work scenario.
//
// Two guest JVMs (a transaction server and a batch scanner) time-share one
// core under the credit scheduler. One profiling session captures all four
// layers of both stacks: hypervisor, guest kernel, JVM runtime, and each
// guest's JIT-compiled application methods.
//
//   $ ./xen_two_guests
#include <cstdio>

#include "workloads/generator.hpp"
#include "workloads/pseudojbb.hpp"
#include "xen/scheduler.hpp"
#include "xen/xenoprof.hpp"

int main() {
  using namespace viprof;
  constexpr auto kTime = hw::EventKind::kGlobalPowerEvents;

  os::MachineConfig mcfg;
  mcfg.seed = 0xd0d0;
  os::Machine machine(mcfg);
  xen::Hypervisor hypervisor(machine);

  // Guest 1: a small pseudoJBB server.
  workloads::Workload server = workloads::make_pseudojbb({2, 15'000});
  jvm::Vm server_vm(machine, server.vm);

  // Guest 2: a batch workload with heavy syscall traffic (paravirt-taxed).
  workloads::GeneratorOptions batch_opt;
  batch_opt.name = "batch";
  batch_opt.seed = 77;
  batch_opt.methods = 48;
  batch_opt.total_app_ops = 60'000'000;
  batch_opt.alloc_intensity = 0.4;
  batch_opt.nursery_bytes = 2ull << 20;
  batch_opt.native_frac = 0.06;
  batch_opt.syscall_frac = 0.08;
  workloads::Workload batch = workloads::make_synthetic(batch_opt);
  jvm::Vm batch_vm(machine, batch.vm);

  xen::Domain dom1{1, "dom1-jbb", &server_vm, 256};
  xen::Domain dom2{2, "dom2-batch", &batch_vm, 256};

  xen::XenoProfSession session(machine, hypervisor);
  session.attach_guest(dom1);
  session.attach_guest(dom2);
  server_vm.setup(server.program);
  batch_vm.setup(batch.program);
  session.start();

  xen::CreditScheduler scheduler(machine, hypervisor);
  scheduler.add_domain(&dom1);
  scheduler.add_domain(&dom2);
  const xen::SchedulerStats sched = scheduler.run_all();
  const xen::XenoProfResult result = session.stop_and_flush();

  std::printf("== two guests under Xen + XenoProf/VIProf ==\n");
  std::printf("scheduler : %llu slices, %llu VCPU switches\n",
              static_cast<unsigned long long>(sched.slices),
              static_cast<unsigned long long>(sched.context_switches));
  std::printf("hypervisor: %.1f%% of machine time\n",
              100.0 * static_cast<double>(sched.hypervisor_cycles) /
                  static_cast<double>(sched.total_cycles));
  std::printf("samples   : %llu (%llu hypervisor-ring)\n\n",
              static_cast<unsigned long long>(result.samples),
              static_cast<unsigned long long>(result.daemon.hypervisor_samples));

  for (const xen::Domain* dom : {&dom1, &dom2}) {
    core::Profile profile = session.domain_profile(*dom, {kTime});
    std::printf("-- %s (weight %u, %llu slices) --\n", dom->name.c_str(), dom->weight,
                static_cast<unsigned long long>(dom->slices));
    std::printf("%s\n", profile.render({kTime}, 8).c_str());
  }

  std::printf("-- hypervisor profile (all domains) --\n%s",
              session.hypervisor_profile({kTime}).render({kTime}, 8).c_str());
  return 0;
}
