file(REMOVE_RECURSE
  "CMakeFiles/ext_guided_opt.dir/ext_guided_opt.cpp.o"
  "CMakeFiles/ext_guided_opt.dir/ext_guided_opt.cpp.o.d"
  "ext_guided_opt"
  "ext_guided_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_guided_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
