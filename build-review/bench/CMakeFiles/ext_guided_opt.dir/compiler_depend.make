# Empty compiler generated dependencies file for ext_guided_opt.
# This may be replaced when dependencies are built.
