# Empty compiler generated dependencies file for abl_gc_flagging.
# This may be replaced when dependencies are built.
