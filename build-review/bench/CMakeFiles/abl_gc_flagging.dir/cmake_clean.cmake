file(REMOVE_RECURSE
  "CMakeFiles/abl_gc_flagging.dir/abl_gc_flagging.cpp.o"
  "CMakeFiles/abl_gc_flagging.dir/abl_gc_flagging.cpp.o.d"
  "abl_gc_flagging"
  "abl_gc_flagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gc_flagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
