# Empty dependencies file for micro_resolve.
# This may be replaced when dependencies are built.
