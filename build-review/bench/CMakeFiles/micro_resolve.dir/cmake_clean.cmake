file(REMOVE_RECURSE
  "CMakeFiles/micro_resolve.dir/micro_resolve.cpp.o"
  "CMakeFiles/micro_resolve.dir/micro_resolve.cpp.o.d"
  "micro_resolve"
  "micro_resolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_resolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
