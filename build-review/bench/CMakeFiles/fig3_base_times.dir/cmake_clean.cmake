file(REMOVE_RECURSE
  "CMakeFiles/fig3_base_times.dir/fig3_base_times.cpp.o"
  "CMakeFiles/fig3_base_times.dir/fig3_base_times.cpp.o.d"
  "fig3_base_times"
  "fig3_base_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_base_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
