# Empty dependencies file for fig3_base_times.
# This may be replaced when dependencies are built.
