file(REMOVE_RECURSE
  "CMakeFiles/fig1_case_study.dir/fig1_case_study.cpp.o"
  "CMakeFiles/fig1_case_study.dir/fig1_case_study.cpp.o.d"
  "fig1_case_study"
  "fig1_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
