# Empty compiler generated dependencies file for fig1_case_study.
# This may be replaced when dependencies are built.
