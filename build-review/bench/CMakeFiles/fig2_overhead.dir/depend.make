# Empty dependencies file for fig2_overhead.
# This may be replaced when dependencies are built.
