file(REMOVE_RECURSE
  "CMakeFiles/fig2_overhead.dir/fig2_overhead.cpp.o"
  "CMakeFiles/fig2_overhead.dir/fig2_overhead.cpp.o.d"
  "fig2_overhead"
  "fig2_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
