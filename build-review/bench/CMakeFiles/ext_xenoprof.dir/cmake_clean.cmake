file(REMOVE_RECURSE
  "CMakeFiles/ext_xenoprof.dir/ext_xenoprof.cpp.o"
  "CMakeFiles/ext_xenoprof.dir/ext_xenoprof.cpp.o.d"
  "ext_xenoprof"
  "ext_xenoprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_xenoprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
