# Empty dependencies file for ext_xenoprof.
# This may be replaced when dependencies are built.
