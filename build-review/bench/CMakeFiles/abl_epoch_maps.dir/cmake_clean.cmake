file(REMOVE_RECURSE
  "CMakeFiles/abl_epoch_maps.dir/abl_epoch_maps.cpp.o"
  "CMakeFiles/abl_epoch_maps.dir/abl_epoch_maps.cpp.o.d"
  "abl_epoch_maps"
  "abl_epoch_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_epoch_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
