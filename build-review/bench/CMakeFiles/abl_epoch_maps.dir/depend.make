# Empty dependencies file for abl_epoch_maps.
# This may be replaced when dependencies are built.
