file(REMOVE_RECURSE
  "libviprof_guidance.a"
)
