# Empty dependencies file for viprof_guidance.
# This may be replaced when dependencies are built.
