file(REMOVE_RECURSE
  "CMakeFiles/viprof_guidance.dir/advisor.cpp.o"
  "CMakeFiles/viprof_guidance.dir/advisor.cpp.o.d"
  "CMakeFiles/viprof_guidance.dir/feedback.cpp.o"
  "CMakeFiles/viprof_guidance.dir/feedback.cpp.o.d"
  "libviprof_guidance.a"
  "libviprof_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
