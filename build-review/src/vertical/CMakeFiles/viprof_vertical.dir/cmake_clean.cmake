file(REMOVE_RECURSE
  "CMakeFiles/viprof_vertical.dir/vertical_profiler.cpp.o"
  "CMakeFiles/viprof_vertical.dir/vertical_profiler.cpp.o.d"
  "libviprof_vertical.a"
  "libviprof_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
