
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vertical/vertical_profiler.cpp" "src/vertical/CMakeFiles/viprof_vertical.dir/vertical_profiler.cpp.o" "gcc" "src/vertical/CMakeFiles/viprof_vertical.dir/vertical_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/jvm/CMakeFiles/viprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/viprof_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
