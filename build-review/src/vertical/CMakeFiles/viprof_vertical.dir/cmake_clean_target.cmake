file(REMOVE_RECURSE
  "libviprof_vertical.a"
)
