# Empty dependencies file for viprof_vertical.
# This may be replaced when dependencies are built.
