# CMake generated Testfile for 
# Source directory: /root/repo/src/vertical
# Build directory: /root/repo/build-review/src/vertical
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
