
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/address_space.cpp" "src/os/CMakeFiles/viprof_os.dir/address_space.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/address_space.cpp.o.d"
  "/root/repo/src/os/image.cpp" "src/os/CMakeFiles/viprof_os.dir/image.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/image.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/viprof_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/loader.cpp" "src/os/CMakeFiles/viprof_os.dir/loader.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/loader.cpp.o.d"
  "/root/repo/src/os/process.cpp" "src/os/CMakeFiles/viprof_os.dir/process.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/process.cpp.o.d"
  "/root/repo/src/os/symbol_table.cpp" "src/os/CMakeFiles/viprof_os.dir/symbol_table.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/symbol_table.cpp.o.d"
  "/root/repo/src/os/vfs.cpp" "src/os/CMakeFiles/viprof_os.dir/vfs.cpp.o" "gcc" "src/os/CMakeFiles/viprof_os.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
