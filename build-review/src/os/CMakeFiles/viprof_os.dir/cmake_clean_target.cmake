file(REMOVE_RECURSE
  "libviprof_os.a"
)
