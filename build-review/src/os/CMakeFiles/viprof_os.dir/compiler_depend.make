# Empty compiler generated dependencies file for viprof_os.
# This may be replaced when dependencies are built.
