file(REMOVE_RECURSE
  "CMakeFiles/viprof_os.dir/address_space.cpp.o"
  "CMakeFiles/viprof_os.dir/address_space.cpp.o.d"
  "CMakeFiles/viprof_os.dir/image.cpp.o"
  "CMakeFiles/viprof_os.dir/image.cpp.o.d"
  "CMakeFiles/viprof_os.dir/kernel.cpp.o"
  "CMakeFiles/viprof_os.dir/kernel.cpp.o.d"
  "CMakeFiles/viprof_os.dir/loader.cpp.o"
  "CMakeFiles/viprof_os.dir/loader.cpp.o.d"
  "CMakeFiles/viprof_os.dir/process.cpp.o"
  "CMakeFiles/viprof_os.dir/process.cpp.o.d"
  "CMakeFiles/viprof_os.dir/symbol_table.cpp.o"
  "CMakeFiles/viprof_os.dir/symbol_table.cpp.o.d"
  "CMakeFiles/viprof_os.dir/vfs.cpp.o"
  "CMakeFiles/viprof_os.dir/vfs.cpp.o.d"
  "libviprof_os.a"
  "libviprof_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
