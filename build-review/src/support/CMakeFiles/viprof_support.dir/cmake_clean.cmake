file(REMOVE_RECURSE
  "CMakeFiles/viprof_support.dir/fault.cpp.o"
  "CMakeFiles/viprof_support.dir/fault.cpp.o.d"
  "CMakeFiles/viprof_support.dir/format.cpp.o"
  "CMakeFiles/viprof_support.dir/format.cpp.o.d"
  "CMakeFiles/viprof_support.dir/histogram.cpp.o"
  "CMakeFiles/viprof_support.dir/histogram.cpp.o.d"
  "CMakeFiles/viprof_support.dir/stats.cpp.o"
  "CMakeFiles/viprof_support.dir/stats.cpp.o.d"
  "CMakeFiles/viprof_support.dir/telemetry.cpp.o"
  "CMakeFiles/viprof_support.dir/telemetry.cpp.o.d"
  "libviprof_support.a"
  "libviprof_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
