file(REMOVE_RECURSE
  "libviprof_support.a"
)
