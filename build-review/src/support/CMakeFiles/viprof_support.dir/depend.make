# Empty dependencies file for viprof_support.
# This may be replaced when dependencies are built.
