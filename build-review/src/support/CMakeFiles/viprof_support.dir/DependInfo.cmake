
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/fault.cpp" "src/support/CMakeFiles/viprof_support.dir/fault.cpp.o" "gcc" "src/support/CMakeFiles/viprof_support.dir/fault.cpp.o.d"
  "/root/repo/src/support/format.cpp" "src/support/CMakeFiles/viprof_support.dir/format.cpp.o" "gcc" "src/support/CMakeFiles/viprof_support.dir/format.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/support/CMakeFiles/viprof_support.dir/histogram.cpp.o" "gcc" "src/support/CMakeFiles/viprof_support.dir/histogram.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/viprof_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/viprof_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/telemetry.cpp" "src/support/CMakeFiles/viprof_support.dir/telemetry.cpp.o" "gcc" "src/support/CMakeFiles/viprof_support.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
