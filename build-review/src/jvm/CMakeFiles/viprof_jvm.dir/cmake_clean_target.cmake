file(REMOVE_RECURSE
  "libviprof_jvm.a"
)
