file(REMOVE_RECURSE
  "CMakeFiles/viprof_jvm.dir/boot_image.cpp.o"
  "CMakeFiles/viprof_jvm.dir/boot_image.cpp.o.d"
  "CMakeFiles/viprof_jvm.dir/heap.cpp.o"
  "CMakeFiles/viprof_jvm.dir/heap.cpp.o.d"
  "CMakeFiles/viprof_jvm.dir/jit.cpp.o"
  "CMakeFiles/viprof_jvm.dir/jit.cpp.o.d"
  "CMakeFiles/viprof_jvm.dir/vm.cpp.o"
  "CMakeFiles/viprof_jvm.dir/vm.cpp.o.d"
  "libviprof_jvm.a"
  "libviprof_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
