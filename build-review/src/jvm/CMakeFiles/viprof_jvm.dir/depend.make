# Empty dependencies file for viprof_jvm.
# This may be replaced when dependencies are built.
