
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/boot_image.cpp" "src/jvm/CMakeFiles/viprof_jvm.dir/boot_image.cpp.o" "gcc" "src/jvm/CMakeFiles/viprof_jvm.dir/boot_image.cpp.o.d"
  "/root/repo/src/jvm/heap.cpp" "src/jvm/CMakeFiles/viprof_jvm.dir/heap.cpp.o" "gcc" "src/jvm/CMakeFiles/viprof_jvm.dir/heap.cpp.o.d"
  "/root/repo/src/jvm/jit.cpp" "src/jvm/CMakeFiles/viprof_jvm.dir/jit.cpp.o" "gcc" "src/jvm/CMakeFiles/viprof_jvm.dir/jit.cpp.o.d"
  "/root/repo/src/jvm/vm.cpp" "src/jvm/CMakeFiles/viprof_jvm.dir/vm.cpp.o" "gcc" "src/jvm/CMakeFiles/viprof_jvm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/os/CMakeFiles/viprof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
