# Empty compiler generated dependencies file for viprof_xen.
# This may be replaced when dependencies are built.
