file(REMOVE_RECURSE
  "libviprof_xen.a"
)
