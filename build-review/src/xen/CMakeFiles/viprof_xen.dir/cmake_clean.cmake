file(REMOVE_RECURSE
  "CMakeFiles/viprof_xen.dir/hypervisor.cpp.o"
  "CMakeFiles/viprof_xen.dir/hypervisor.cpp.o.d"
  "CMakeFiles/viprof_xen.dir/scheduler.cpp.o"
  "CMakeFiles/viprof_xen.dir/scheduler.cpp.o.d"
  "CMakeFiles/viprof_xen.dir/xenoprof.cpp.o"
  "CMakeFiles/viprof_xen.dir/xenoprof.cpp.o.d"
  "libviprof_xen.a"
  "libviprof_xen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_xen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
