
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cpp" "src/core/CMakeFiles/viprof_core.dir/agent.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/agent.cpp.o.d"
  "/root/repo/src/core/annotate.cpp" "src/core/CMakeFiles/viprof_core.dir/annotate.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/annotate.cpp.o.d"
  "/root/repo/src/core/archive.cpp" "src/core/CMakeFiles/viprof_core.dir/archive.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/archive.cpp.o.d"
  "/root/repo/src/core/callgraph.cpp" "src/core/CMakeFiles/viprof_core.dir/callgraph.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/callgraph.cpp.o.d"
  "/root/repo/src/core/code_map.cpp" "src/core/CMakeFiles/viprof_core.dir/code_map.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/code_map.cpp.o.d"
  "/root/repo/src/core/daemon.cpp" "src/core/CMakeFiles/viprof_core.dir/daemon.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/daemon.cpp.o.d"
  "/root/repo/src/core/fsck.cpp" "src/core/CMakeFiles/viprof_core.dir/fsck.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/fsck.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/viprof_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/report.cpp.o.d"
  "/root/repo/src/core/resolver.cpp" "src/core/CMakeFiles/viprof_core.dir/resolver.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/resolver.cpp.o.d"
  "/root/repo/src/core/sample_buffer.cpp" "src/core/CMakeFiles/viprof_core.dir/sample_buffer.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/sample_buffer.cpp.o.d"
  "/root/repo/src/core/sample_log.cpp" "src/core/CMakeFiles/viprof_core.dir/sample_log.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/sample_log.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/viprof_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/viprof_core.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/jvm/CMakeFiles/viprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/viprof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
