file(REMOVE_RECURSE
  "libviprof_core.a"
)
