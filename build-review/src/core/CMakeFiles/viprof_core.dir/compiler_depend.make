# Empty compiler generated dependencies file for viprof_core.
# This may be replaced when dependencies are built.
