file(REMOVE_RECURSE
  "CMakeFiles/viprof_core.dir/agent.cpp.o"
  "CMakeFiles/viprof_core.dir/agent.cpp.o.d"
  "CMakeFiles/viprof_core.dir/annotate.cpp.o"
  "CMakeFiles/viprof_core.dir/annotate.cpp.o.d"
  "CMakeFiles/viprof_core.dir/archive.cpp.o"
  "CMakeFiles/viprof_core.dir/archive.cpp.o.d"
  "CMakeFiles/viprof_core.dir/callgraph.cpp.o"
  "CMakeFiles/viprof_core.dir/callgraph.cpp.o.d"
  "CMakeFiles/viprof_core.dir/code_map.cpp.o"
  "CMakeFiles/viprof_core.dir/code_map.cpp.o.d"
  "CMakeFiles/viprof_core.dir/daemon.cpp.o"
  "CMakeFiles/viprof_core.dir/daemon.cpp.o.d"
  "CMakeFiles/viprof_core.dir/fsck.cpp.o"
  "CMakeFiles/viprof_core.dir/fsck.cpp.o.d"
  "CMakeFiles/viprof_core.dir/report.cpp.o"
  "CMakeFiles/viprof_core.dir/report.cpp.o.d"
  "CMakeFiles/viprof_core.dir/resolver.cpp.o"
  "CMakeFiles/viprof_core.dir/resolver.cpp.o.d"
  "CMakeFiles/viprof_core.dir/sample_buffer.cpp.o"
  "CMakeFiles/viprof_core.dir/sample_buffer.cpp.o.d"
  "CMakeFiles/viprof_core.dir/sample_log.cpp.o"
  "CMakeFiles/viprof_core.dir/sample_log.cpp.o.d"
  "CMakeFiles/viprof_core.dir/session.cpp.o"
  "CMakeFiles/viprof_core.dir/session.cpp.o.d"
  "libviprof_core.a"
  "libviprof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
