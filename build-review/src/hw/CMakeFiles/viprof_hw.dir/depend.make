# Empty dependencies file for viprof_hw.
# This may be replaced when dependencies are built.
