file(REMOVE_RECURSE
  "CMakeFiles/viprof_hw.dir/access_pattern.cpp.o"
  "CMakeFiles/viprof_hw.dir/access_pattern.cpp.o.d"
  "CMakeFiles/viprof_hw.dir/cache.cpp.o"
  "CMakeFiles/viprof_hw.dir/cache.cpp.o.d"
  "CMakeFiles/viprof_hw.dir/cpu.cpp.o"
  "CMakeFiles/viprof_hw.dir/cpu.cpp.o.d"
  "CMakeFiles/viprof_hw.dir/perf_counter.cpp.o"
  "CMakeFiles/viprof_hw.dir/perf_counter.cpp.o.d"
  "libviprof_hw.a"
  "libviprof_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
