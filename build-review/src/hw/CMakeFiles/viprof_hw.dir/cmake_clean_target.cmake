file(REMOVE_RECURSE
  "libviprof_hw.a"
)
