
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/access_pattern.cpp" "src/hw/CMakeFiles/viprof_hw.dir/access_pattern.cpp.o" "gcc" "src/hw/CMakeFiles/viprof_hw.dir/access_pattern.cpp.o.d"
  "/root/repo/src/hw/cache.cpp" "src/hw/CMakeFiles/viprof_hw.dir/cache.cpp.o" "gcc" "src/hw/CMakeFiles/viprof_hw.dir/cache.cpp.o.d"
  "/root/repo/src/hw/cpu.cpp" "src/hw/CMakeFiles/viprof_hw.dir/cpu.cpp.o" "gcc" "src/hw/CMakeFiles/viprof_hw.dir/cpu.cpp.o.d"
  "/root/repo/src/hw/perf_counter.cpp" "src/hw/CMakeFiles/viprof_hw.dir/perf_counter.cpp.o" "gcc" "src/hw/CMakeFiles/viprof_hw.dir/perf_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
