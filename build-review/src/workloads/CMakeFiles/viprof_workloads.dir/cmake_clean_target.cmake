file(REMOVE_RECURSE
  "libviprof_workloads.a"
)
