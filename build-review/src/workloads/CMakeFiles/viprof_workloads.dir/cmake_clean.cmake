file(REMOVE_RECURSE
  "CMakeFiles/viprof_workloads.dir/common.cpp.o"
  "CMakeFiles/viprof_workloads.dir/common.cpp.o.d"
  "CMakeFiles/viprof_workloads.dir/dacapo.cpp.o"
  "CMakeFiles/viprof_workloads.dir/dacapo.cpp.o.d"
  "CMakeFiles/viprof_workloads.dir/generator.cpp.o"
  "CMakeFiles/viprof_workloads.dir/generator.cpp.o.d"
  "CMakeFiles/viprof_workloads.dir/jvm98.cpp.o"
  "CMakeFiles/viprof_workloads.dir/jvm98.cpp.o.d"
  "CMakeFiles/viprof_workloads.dir/pseudojbb.cpp.o"
  "CMakeFiles/viprof_workloads.dir/pseudojbb.cpp.o.d"
  "libviprof_workloads.a"
  "libviprof_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
