# Empty compiler generated dependencies file for viprof_workloads.
# This may be replaced when dependencies are built.
