
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/viprof_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/viprof_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/dacapo.cpp" "src/workloads/CMakeFiles/viprof_workloads.dir/dacapo.cpp.o" "gcc" "src/workloads/CMakeFiles/viprof_workloads.dir/dacapo.cpp.o.d"
  "/root/repo/src/workloads/generator.cpp" "src/workloads/CMakeFiles/viprof_workloads.dir/generator.cpp.o" "gcc" "src/workloads/CMakeFiles/viprof_workloads.dir/generator.cpp.o.d"
  "/root/repo/src/workloads/jvm98.cpp" "src/workloads/CMakeFiles/viprof_workloads.dir/jvm98.cpp.o" "gcc" "src/workloads/CMakeFiles/viprof_workloads.dir/jvm98.cpp.o.d"
  "/root/repo/src/workloads/pseudojbb.cpp" "src/workloads/CMakeFiles/viprof_workloads.dir/pseudojbb.cpp.o" "gcc" "src/workloads/CMakeFiles/viprof_workloads.dir/pseudojbb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/jvm/CMakeFiles/viprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/viprof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
