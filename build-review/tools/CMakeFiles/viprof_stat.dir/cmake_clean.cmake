file(REMOVE_RECURSE
  "CMakeFiles/viprof_stat.dir/viprof_stat.cpp.o"
  "CMakeFiles/viprof_stat.dir/viprof_stat.cpp.o.d"
  "viprof_stat"
  "viprof_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
