# Empty compiler generated dependencies file for viprof_stat.
# This may be replaced when dependencies are built.
