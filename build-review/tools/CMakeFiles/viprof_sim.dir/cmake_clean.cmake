file(REMOVE_RECURSE
  "CMakeFiles/viprof_sim.dir/viprof_sim.cpp.o"
  "CMakeFiles/viprof_sim.dir/viprof_sim.cpp.o.d"
  "viprof_sim"
  "viprof_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
