# Empty dependencies file for viprof_sim.
# This may be replaced when dependencies are built.
