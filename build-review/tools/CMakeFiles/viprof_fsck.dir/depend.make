# Empty dependencies file for viprof_fsck.
# This may be replaced when dependencies are built.
