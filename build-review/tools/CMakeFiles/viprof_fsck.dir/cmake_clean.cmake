file(REMOVE_RECURSE
  "CMakeFiles/viprof_fsck.dir/viprof_fsck.cpp.o"
  "CMakeFiles/viprof_fsck.dir/viprof_fsck.cpp.o.d"
  "viprof_fsck"
  "viprof_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
