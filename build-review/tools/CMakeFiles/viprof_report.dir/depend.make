# Empty dependencies file for viprof_report.
# This may be replaced when dependencies are built.
