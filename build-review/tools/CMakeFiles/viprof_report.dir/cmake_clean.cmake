file(REMOVE_RECURSE
  "CMakeFiles/viprof_report.dir/viprof_report.cpp.o"
  "CMakeFiles/viprof_report.dir/viprof_report.cpp.o.d"
  "viprof_report"
  "viprof_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
