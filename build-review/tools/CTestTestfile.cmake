# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_viprof_sim "/root/repo/build-review/tools/viprof_sim" "--workload" "synthetic" "--mode" "viprof" "--top" "5" "--out" "/root/repo/build-review/tools/smoke_session")
set_tests_properties(tool_viprof_sim PROPERTIES  FIXTURES_SETUP "smoke_session" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viprof_report "/root/repo/build-review/tools/viprof_report" "--in" "/root/repo/build-review/tools/smoke_session" "--top" "5")
set_tests_properties(tool_viprof_report PROPERTIES  FIXTURES_REQUIRED "smoke_session" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viprof_stat_dump "/root/repo/build-review/tools/viprof_stat" "dump" "--in" "/root/repo/build-review/tools/smoke_session")
set_tests_properties(tool_viprof_stat_dump PROPERTIES  FIXTURES_REQUIRED "smoke_session" LABELS "telemetry" PASS_REGULAR_EXPRESSION "profiler.overhead_pct" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viprof_stat_diff "/root/repo/build-review/tools/viprof_stat" "diff" "--before" "/root/repo/build-review/tools/smoke_session" "--after" "/root/repo/build-review/tools/smoke_session")
set_tests_properties(tool_viprof_stat_diff PROPERTIES  FIXTURES_REQUIRED "smoke_session" LABELS "telemetry" PASS_REGULAR_EXPRESSION "no differences" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viprof_fsck "/root/repo/build-review/tools/viprof_fsck" "--in" "/root/repo/build-review/tools/smoke_session")
set_tests_properties(tool_viprof_fsck PROPERTIES  FIXTURES_REQUIRED "smoke_session" LABELS "faults" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viprof_fsck_recover "/root/repo/build-review/tools/viprof_fsck" "--in" "/root/repo/build-review/tools/smoke_session" "--out" "/root/repo/build-review/tools/smoke_session_recovered" "--quiet")
set_tests_properties(tool_viprof_fsck_recover PROPERTIES  FIXTURES_REQUIRED "smoke_session" LABELS "faults" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
