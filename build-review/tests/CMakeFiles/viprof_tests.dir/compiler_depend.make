# Empty compiler generated dependencies file for viprof_tests.
# This may be replaced when dependencies are built.
