
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_clr_flavor.cpp" "tests/CMakeFiles/viprof_tests.dir/test_clr_flavor.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_clr_flavor.cpp.o.d"
  "/root/repo/tests/test_core_agent.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_agent.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_agent.cpp.o.d"
  "/root/repo/tests/test_core_annotate.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_annotate.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_annotate.cpp.o.d"
  "/root/repo/tests/test_core_archive.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_archive.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_archive.cpp.o.d"
  "/root/repo/tests/test_core_callgraph.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_callgraph.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_callgraph.cpp.o.d"
  "/root/repo/tests/test_core_code_map.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_code_map.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_code_map.cpp.o.d"
  "/root/repo/tests/test_core_daemon.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_daemon.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_daemon.cpp.o.d"
  "/root/repo/tests/test_core_report.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_report.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_report.cpp.o.d"
  "/root/repo/tests/test_core_resolver.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_resolver.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_resolver.cpp.o.d"
  "/root/repo/tests/test_core_sample_buffer.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_sample_buffer.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_sample_buffer.cpp.o.d"
  "/root/repo/tests/test_core_sample_log.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_sample_log.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_sample_log.cpp.o.d"
  "/root/repo/tests/test_core_session.cpp" "tests/CMakeFiles/viprof_tests.dir/test_core_session.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_core_session.cpp.o.d"
  "/root/repo/tests/test_guidance.cpp" "tests/CMakeFiles/viprof_tests.dir/test_guidance.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_guidance.cpp.o.d"
  "/root/repo/tests/test_hw_access_pattern.cpp" "tests/CMakeFiles/viprof_tests.dir/test_hw_access_pattern.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_hw_access_pattern.cpp.o.d"
  "/root/repo/tests/test_hw_cache.cpp" "tests/CMakeFiles/viprof_tests.dir/test_hw_cache.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_hw_cache.cpp.o.d"
  "/root/repo/tests/test_hw_cpu.cpp" "tests/CMakeFiles/viprof_tests.dir/test_hw_cpu.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_hw_cpu.cpp.o.d"
  "/root/repo/tests/test_hw_perf_counter.cpp" "tests/CMakeFiles/viprof_tests.dir/test_hw_perf_counter.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_hw_perf_counter.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/viprof_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_jvm_boot_image.cpp" "tests/CMakeFiles/viprof_tests.dir/test_jvm_boot_image.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_jvm_boot_image.cpp.o.d"
  "/root/repo/tests/test_jvm_heap.cpp" "tests/CMakeFiles/viprof_tests.dir/test_jvm_heap.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_jvm_heap.cpp.o.d"
  "/root/repo/tests/test_jvm_jit.cpp" "tests/CMakeFiles/viprof_tests.dir/test_jvm_jit.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_jvm_jit.cpp.o.d"
  "/root/repo/tests/test_jvm_vm.cpp" "tests/CMakeFiles/viprof_tests.dir/test_jvm_vm.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_jvm_vm.cpp.o.d"
  "/root/repo/tests/test_os_address_space.cpp" "tests/CMakeFiles/viprof_tests.dir/test_os_address_space.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_os_address_space.cpp.o.d"
  "/root/repo/tests/test_os_kernel.cpp" "tests/CMakeFiles/viprof_tests.dir/test_os_kernel.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_os_kernel.cpp.o.d"
  "/root/repo/tests/test_os_loader.cpp" "tests/CMakeFiles/viprof_tests.dir/test_os_loader.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_os_loader.cpp.o.d"
  "/root/repo/tests/test_os_symbol_table.cpp" "tests/CMakeFiles/viprof_tests.dir/test_os_symbol_table.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_os_symbol_table.cpp.o.d"
  "/root/repo/tests/test_os_vfs.cpp" "tests/CMakeFiles/viprof_tests.dir/test_os_vfs.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_os_vfs.cpp.o.d"
  "/root/repo/tests/test_property_epochs.cpp" "tests/CMakeFiles/viprof_tests.dir/test_property_epochs.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_property_epochs.cpp.o.d"
  "/root/repo/tests/test_support_format.cpp" "tests/CMakeFiles/viprof_tests.dir/test_support_format.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_support_format.cpp.o.d"
  "/root/repo/tests/test_support_histogram.cpp" "tests/CMakeFiles/viprof_tests.dir/test_support_histogram.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_support_histogram.cpp.o.d"
  "/root/repo/tests/test_support_rng.cpp" "tests/CMakeFiles/viprof_tests.dir/test_support_rng.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_support_rng.cpp.o.d"
  "/root/repo/tests/test_support_stats.cpp" "tests/CMakeFiles/viprof_tests.dir/test_support_stats.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_support_stats.cpp.o.d"
  "/root/repo/tests/test_vertical.cpp" "tests/CMakeFiles/viprof_tests.dir/test_vertical.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_vertical.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/viprof_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_workloads.cpp.o.d"
  "/root/repo/tests/test_xen.cpp" "tests/CMakeFiles/viprof_tests.dir/test_xen.cpp.o" "gcc" "tests/CMakeFiles/viprof_tests.dir/test_xen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/viprof_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/viprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vertical/CMakeFiles/viprof_vertical.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xen/CMakeFiles/viprof_xen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/guidance/CMakeFiles/viprof_guidance.dir/DependInfo.cmake"
  "/root/repo/build-review/src/jvm/CMakeFiles/viprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/viprof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
