# Empty compiler generated dependencies file for viprof_fault_tests.
# This may be replaced when dependencies are built.
