file(REMOVE_RECURSE
  "CMakeFiles/viprof_fault_tests.dir/test_core_fsck.cpp.o"
  "CMakeFiles/viprof_fault_tests.dir/test_core_fsck.cpp.o.d"
  "CMakeFiles/viprof_fault_tests.dir/test_crash_recovery.cpp.o"
  "CMakeFiles/viprof_fault_tests.dir/test_crash_recovery.cpp.o.d"
  "CMakeFiles/viprof_fault_tests.dir/test_failure_injection.cpp.o"
  "CMakeFiles/viprof_fault_tests.dir/test_failure_injection.cpp.o.d"
  "CMakeFiles/viprof_fault_tests.dir/test_support_fault.cpp.o"
  "CMakeFiles/viprof_fault_tests.dir/test_support_fault.cpp.o.d"
  "viprof_fault_tests"
  "viprof_fault_tests.pdb"
  "viprof_fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
