
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_fsck.cpp" "tests/CMakeFiles/viprof_fault_tests.dir/test_core_fsck.cpp.o" "gcc" "tests/CMakeFiles/viprof_fault_tests.dir/test_core_fsck.cpp.o.d"
  "/root/repo/tests/test_crash_recovery.cpp" "tests/CMakeFiles/viprof_fault_tests.dir/test_crash_recovery.cpp.o" "gcc" "tests/CMakeFiles/viprof_fault_tests.dir/test_crash_recovery.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/viprof_fault_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/viprof_fault_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_support_fault.cpp" "tests/CMakeFiles/viprof_fault_tests.dir/test_support_fault.cpp.o" "gcc" "tests/CMakeFiles/viprof_fault_tests.dir/test_support_fault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/viprof_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/viprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vertical/CMakeFiles/viprof_vertical.dir/DependInfo.cmake"
  "/root/repo/build-review/src/xen/CMakeFiles/viprof_xen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/guidance/CMakeFiles/viprof_guidance.dir/DependInfo.cmake"
  "/root/repo/build-review/src/jvm/CMakeFiles/viprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/os/CMakeFiles/viprof_os.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hw/CMakeFiles/viprof_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/viprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
