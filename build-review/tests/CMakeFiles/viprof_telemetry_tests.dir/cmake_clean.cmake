file(REMOVE_RECURSE
  "CMakeFiles/viprof_telemetry_tests.dir/test_support_telemetry.cpp.o"
  "CMakeFiles/viprof_telemetry_tests.dir/test_support_telemetry.cpp.o.d"
  "CMakeFiles/viprof_telemetry_tests.dir/test_telemetry_integration.cpp.o"
  "CMakeFiles/viprof_telemetry_tests.dir/test_telemetry_integration.cpp.o.d"
  "viprof_telemetry_tests"
  "viprof_telemetry_tests.pdb"
  "viprof_telemetry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viprof_telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
