# Empty dependencies file for viprof_telemetry_tests.
# This may be replaced when dependencies are built.
