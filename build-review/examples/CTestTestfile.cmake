# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dacapo_ps_casestudy "/root/repo/build-review/examples/dacapo_ps_casestudy")
set_tests_properties(example_dacapo_ps_casestudy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_server_epoch_analysis "/root/repo/build-review/examples/server_epoch_analysis")
set_tests_properties(example_server_epoch_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overhead_sweep "/root/repo/build-review/examples/overhead_sweep")
set_tests_properties(example_overhead_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xen_two_guests "/root/repo/build-review/examples/xen_two_guests")
set_tests_properties(example_xen_two_guests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_guided_opt "/root/repo/build-review/examples/profile_guided_opt")
set_tests_properties(example_profile_guided_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
