file(REMOVE_RECURSE
  "CMakeFiles/dacapo_ps_casestudy.dir/dacapo_ps_casestudy.cpp.o"
  "CMakeFiles/dacapo_ps_casestudy.dir/dacapo_ps_casestudy.cpp.o.d"
  "dacapo_ps_casestudy"
  "dacapo_ps_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacapo_ps_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
