# Empty compiler generated dependencies file for dacapo_ps_casestudy.
# This may be replaced when dependencies are built.
