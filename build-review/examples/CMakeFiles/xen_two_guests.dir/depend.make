# Empty dependencies file for xen_two_guests.
# This may be replaced when dependencies are built.
