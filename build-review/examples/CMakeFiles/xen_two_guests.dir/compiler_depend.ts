# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xen_two_guests.
