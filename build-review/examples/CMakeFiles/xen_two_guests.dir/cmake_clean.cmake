file(REMOVE_RECURSE
  "CMakeFiles/xen_two_guests.dir/xen_two_guests.cpp.o"
  "CMakeFiles/xen_two_guests.dir/xen_two_guests.cpp.o.d"
  "xen_two_guests"
  "xen_two_guests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xen_two_guests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
