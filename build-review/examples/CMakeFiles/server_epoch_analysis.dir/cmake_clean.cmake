file(REMOVE_RECURSE
  "CMakeFiles/server_epoch_analysis.dir/server_epoch_analysis.cpp.o"
  "CMakeFiles/server_epoch_analysis.dir/server_epoch_analysis.cpp.o.d"
  "server_epoch_analysis"
  "server_epoch_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_epoch_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
