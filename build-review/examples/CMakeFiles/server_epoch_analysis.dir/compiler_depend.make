# Empty compiler generated dependencies file for server_epoch_analysis.
# This may be replaced when dependencies are built.
