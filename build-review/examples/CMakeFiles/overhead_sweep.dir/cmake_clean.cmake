file(REMOVE_RECURSE
  "CMakeFiles/overhead_sweep.dir/overhead_sweep.cpp.o"
  "CMakeFiles/overhead_sweep.dir/overhead_sweep.cpp.o.d"
  "overhead_sweep"
  "overhead_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
