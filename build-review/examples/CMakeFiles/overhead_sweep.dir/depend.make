# Empty dependencies file for overhead_sweep.
# This may be replaced when dependencies are built.
