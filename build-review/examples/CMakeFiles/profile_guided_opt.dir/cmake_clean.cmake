file(REMOVE_RECURSE
  "CMakeFiles/profile_guided_opt.dir/profile_guided_opt.cpp.o"
  "CMakeFiles/profile_guided_opt.dir/profile_guided_opt.cpp.o.d"
  "profile_guided_opt"
  "profile_guided_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_guided_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
