# Empty compiler generated dependencies file for profile_guided_opt.
# This may be replaced when dependencies are built.
